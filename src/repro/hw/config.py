"""Hardware configuration and cost constants (Sec. VI-A / VII-A).

The baseline accelerator matches the paper's evaluation platform: a
TPU-like 20x20 16-bit MAC systolic array at 250 MHz with 1.5 MB of
on-chip SRAM (64 KB banks) and four Micron 16 Gb LPDDR3-1600 DRAM
channels.  Ptolemy adds a 32 KB psum/mask SRAM, a 64 KB path
constructor SRAM, two 16-element sort units, a 16-way merge tree and
an accumulation unit.

Energy/area constants are representative 15nm-class numbers (the paper
synthesises with the Silvaco 15nm open cell library but does not
publish per-op values).  Absolute joules are therefore indicative; the
figures the paper reports — and that this model reproduces — are
*ratios* normalised to inference, which depend only on the relative
magnitudes (DRAM >> SRAM >> MAC >> compare).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["EnergyTable", "HardwareConfig", "DEFAULT_HW"]


@dataclass(frozen=True)
class EnergyTable:
    """Per-operation energies in picojoules (16-bit datapath)."""

    mac: float = 0.55             # 16-bit fixed-point MAC
    sram_word: float = 1.10       # 16-bit SRAM access (64 KB bank)
    dram_word: float = 45.0       # 16-bit DRAM access (LPDDR3)
    compare: float = 0.08         # threshold comparator in the MAC unit
    sort_cas: float = 2.30        # compare-and-swap in the sort network
    merge_op: float = 1.50        # one merge-tree element step
    accumulate: float = 0.90      # one acum element step
    mask_bit: float = 0.02        # mask generation / popcount per bit
    mcu_op: float = 6.0           # one MCU operation (RF classifier)

    def scaled_for_8bit(self) -> "EnergyTable":
        """8-bit datapath variant (Sec. VII-G): narrower MACs and
        halved word-transfer energy."""
        return EnergyTable(
            mac=self.mac * 0.45,
            sram_word=self.sram_word * 0.5,
            dram_word=self.dram_word * 0.5,
            compare=self.compare * 0.6,
            sort_cas=self.sort_cas * 0.6,
            merge_op=self.merge_op * 0.6,
            accumulate=self.accumulate * 0.6,
            mask_bit=self.mask_bit,
            mcu_op=self.mcu_op,
        )


@dataclass(frozen=True)
class HardwareConfig:
    """The full platform description consumed by the simulator."""

    # -- baseline accelerator ------------------------------------------
    array_rows: int = 20
    array_cols: int = 20
    frequency_hz: float = 250e6
    datapath_bits: int = 16
    accelerator_sram_kb: int = 1536       # 1.5 MB in 64 KB banks
    sram_bank_kb: int = 64
    # -- DRAM: four 16 Gb LPDDR3-1600 channels -------------------------
    dram_channels: int = 4
    dram_channel_gbps: float = 6.4        # GB/s per LPDDR3-1600 x32 channel
    # -- Ptolemy extensions (Sec. VII-A) ---------------------------------
    psum_sram_kb: int = 32                # banked at 2 KB
    constructor_sram_kb: int = 64
    num_sort_units: int = 2
    sort_unit_width: int = 16             # elements per sorting network
    merge_tree_length: int = 16           # runs merged simultaneously
    mask_popcount_bits: int = 256         # path-similarity bit parallelism
    # -- classifier (Sec. V-D) ---------------------------------------------
    rf_trees: int = 100
    rf_depth: int = 12
    mcu_cycles_per_op: int = 2
    energy: EnergyTable = field(default_factory=EnergyTable)

    def __post_init__(self):
        if self.array_rows <= 0 or self.array_cols <= 0:
            raise ValueError("array dimensions must be positive")
        if self.num_sort_units < 1 or self.merge_tree_length < 2:
            raise ValueError("invalid path-constructor configuration")

    # -- derived quantities ------------------------------------------------
    @property
    def macs_per_cycle(self) -> int:
        return self.array_rows * self.array_cols

    @property
    def word_bytes(self) -> int:
        return self.datapath_bits // 8

    @property
    def dram_bytes_per_cycle(self) -> float:
        total_bps = self.dram_channels * self.dram_channel_gbps * 1e9
        return total_bps / self.frequency_hz

    @property
    def sort_network_stages(self) -> int:
        """Bitonic-network stage count for one sort-unit pass:
        k(k+1)/2 for width 2^k (Knuth; Sec. V-C cites sorting networks)."""
        import math

        k = int(math.log2(self.sort_unit_width))
        return k * (k + 1) // 2

    # -- variants --------------------------------------------------------
    def with_array(self, rows: int, cols: int) -> "HardwareConfig":
        return replace(self, array_rows=rows, array_cols=cols)

    def with_8bit(self) -> "HardwareConfig":
        return replace(
            self, datapath_bits=8, energy=self.energy.scaled_for_8bit()
        )

    def with_sort_units(self, count: int) -> "HardwareConfig":
        return replace(self, num_sort_units=count)

    def with_merge_length(self, length: int) -> "HardwareConfig":
        return replace(self, merge_tree_length=length)


#: The paper's evaluation platform.
DEFAULT_HW = HardwareConfig()
