"""repro.data — synthetic class-structured image datasets.

Stand-ins for ImageNet / CIFAR: each class is a smooth random prototype
pattern; samples are warped, shifted, and noised instances of their
class prototype.  Inter-class similarity is controllable, which lets
the benchmarks reproduce the paper's ImageNet-vs-CIFAR contrast
(many dissimilar classes vs few similar classes, Fig. 5).
"""

from repro.data.synthetic import (
    DatasetSpec,
    SyntheticDataset,
    make_dataset,
    make_imagenet_like,
    make_cifar_like,
)
from repro.data.loaders import batch_iterator, train_test_split
from repro.data.corruptions import (
    CORRUPTIONS,
    CorruptionResult,
    apply_corruption,
    corruption_sweep,
)

__all__ = [
    "DatasetSpec",
    "SyntheticDataset",
    "make_dataset",
    "make_imagenet_like",
    "make_cifar_like",
    "batch_iterator",
    "train_test_split",
    "CORRUPTIONS",
    "CorruptionResult",
    "apply_corruption",
    "corruption_sweep",
]
