"""Runtime subsystem tests: micro-batching, stats accounting, and the
detection engine's streaming front-end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import FGSM
from repro.core import ExtractionConfig, PtolemyDetector, calibrate_phi
from repro.runtime import (
    DetectionEngine,
    MicroBatcher,
    ThroughputStats,
    iter_microbatches,
)
from repro.runtime.stats import StageTimer


@pytest.fixture(scope="module")
def engine_detector(small_dataset, trained_alexnet):
    """A fitted FwAb detector (the engine's default serving variant)."""
    model = trained_alexnet
    config = calibrate_phi(
        model,
        ExtractionConfig.fwab(model.num_extraction_units()),
        small_dataset.x_train[:4],
        quantile=0.95,
    )
    detector = PtolemyDetector(model, config, n_trees=20, seed=0)
    detector.profile(
        small_dataset.x_train, small_dataset.y_train, max_per_class=8
    )
    adv = FGSM(eps=0.1).generate(
        model, small_dataset.x_train[:20], small_dataset.y_train[:20]
    ).x_adv
    detector.fit_classifier(small_dataset.x_train[20:40], adv)
    return detector


class TestMicroBatcher:
    def test_fills_and_flushes(self):
        batcher = MicroBatcher(3)
        assert batcher.add(np.zeros(4)) is None
        assert batcher.add(np.ones(4)) is None
        batch = batcher.add(np.full(4, 2.0))
        assert batch is not None and batch.shape == (3, 4)
        assert np.array_equal(batch[2], np.full(4, 2.0))
        assert batcher.pending == 0
        assert batcher.flush() is None

    def test_partial_flush(self):
        batcher = MicroBatcher(8)
        batcher.add(np.zeros(2))
        tail = batcher.flush()
        assert tail.shape == (1, 2)

    def test_shape_mismatch_rejected(self):
        batcher = MicroBatcher(4)
        batcher.add(np.zeros(3))
        with pytest.raises(ValueError):
            batcher.add(np.zeros(5))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            MicroBatcher(0)

    def test_iter_microbatches_views(self):
        xs = np.arange(10).reshape(10, 1)
        batches = list(iter_microbatches(xs, 4))
        assert [len(b) for b in batches] == [4, 4, 2]
        assert np.array_equal(np.concatenate(batches), xs)
        assert list(iter_microbatches(xs[:0], 4)) == []


class TestThroughputStats:
    def test_accounting(self):
        stats = ThroughputStats()
        stats.record(8, 0.5, stages={"extract": 0.3})
        stats.record(4, 0.5, stages={"extract": 0.1, "classify": 0.05})
        assert stats.samples == 12
        assert stats.batches == 2
        assert stats.samples_per_sec == pytest.approx(12.0)
        assert stats.stage_seconds["extract"] == pytest.approx(0.4)
        report = stats.report()
        assert report["samples_per_sec"] == pytest.approx(12.0)
        assert report["stage_classify_seconds"] == pytest.approx(0.05)
        assert "samples/s" in stats.summary()

    def test_empty_stats(self):
        stats = ThroughputStats()
        assert stats.samples_per_sec == 0.0
        assert stats.mean_batch_latency_ms == 0.0
        assert stats.latency_percentile_ms(95) == 0.0

    def test_latency_window_is_bounded(self):
        from repro.runtime.stats import LATENCY_WINDOW

        stats = ThroughputStats()
        for _ in range(LATENCY_WINDOW + 10):
            stats.record(1, 0.001)
        # totals stay exact; only the latency distribution is windowed
        assert stats.samples == LATENCY_WINDOW + 10
        assert stats.batches == LATENCY_WINDOW + 10
        assert len(stats.batch_latencies) == LATENCY_WINDOW

    def test_stage_timer(self):
        timer = StageTimer()
        with timer.stage("a"):
            pass
        with timer.stage("a"):
            pass
        assert timer.seconds["a"] >= 0.0
        other = StageTimer()
        other.add("b", 1.0)
        timer.merge(other)
        assert timer.seconds["b"] == 1.0


class TestDetectionEngine:
    def test_requires_fitted_detector(
        self, small_dataset, trained_alexnet
    ):
        config = ExtractionConfig.fwab(
            trained_alexnet.num_extraction_units()
        )
        unfitted = PtolemyDetector(trained_alexnet, config, n_trees=4)
        with pytest.raises(ValueError):
            DetectionEngine(unfitted)

    def test_run_matches_per_sample_detect(
        self, engine_detector, small_dataset
    ):
        engine = DetectionEngine(engine_detector, batch_size=8)
        xs = small_dataset.x_test[:20]
        result = engine.run(xs)
        assert result.num_samples == 20
        reference = np.array([
            engine_detector.detect(xs[i : i + 1]).score
            for i in range(len(xs))
        ])
        assert np.array_equal(result.scores, reference)
        assert engine.stats.samples == 20
        assert engine.stats.batches == 3  # 8 + 8 + 4
        assert engine.stats.total_seconds > 0

    def test_batch_size_does_not_change_decisions(
        self, engine_detector, small_dataset
    ):
        xs = small_dataset.x_test[:15]
        runs = [
            DetectionEngine(engine_detector, batch_size=bs).run(xs).scores
            for bs in (1, 4, 15)
        ]
        assert np.array_equal(runs[0], runs[1])
        assert np.array_equal(runs[0], runs[2])

    def test_streaming_submit_and_flush(
        self, engine_detector, small_dataset
    ):
        engine = DetectionEngine(engine_detector, batch_size=4)
        xs = small_dataset.x_test[:6]
        outputs = [engine.submit(x) for x in xs]
        assert [o is not None for o in outputs] == [
            False, False, False, True, False, False,
        ]
        assert engine.pending == 2
        tail = engine.flush()
        assert tail is not None and len(tail) == 2
        assert engine.pending == 0
        assert engine.flush() is None

    def test_run_stream_equals_run(self, engine_detector, small_dataset):
        xs = small_dataset.x_test[:10]
        bulk = DetectionEngine(engine_detector, batch_size=4).run(xs)
        streamed = DetectionEngine(engine_detector, batch_size=4).run_stream(
            iter(xs)
        )
        assert np.array_equal(bulk.scores, streamed.scores)
        assert np.array_equal(
            bulk.predicted_classes, streamed.predicted_classes
        )

    def test_deploy_calibrates_threshold(
        self, engine_detector, small_dataset
    ):
        engine = DetectionEngine.deploy(
            engine_detector,
            small_dataset.x_test[-20:],
            target_fpr=0.25,
            batch_size=8,
        )
        result = engine.run(small_dataset.x_test[-20:])
        # threshold was chosen so at most ~25% of calibration data flags
        assert result.rejection_rate <= 0.25 + 1e-9

    def test_run_result_stats_are_per_run(
        self, engine_detector, small_dataset
    ):
        engine = DetectionEngine(engine_detector, batch_size=8)
        first = engine.run(small_dataset.x_test[:12])
        second = engine.run(small_dataset.x_test[:20])
        # each result carries only its own run's accounting...
        assert first.stats.samples == 12
        assert second.stats.samples == 20
        # ...while the engine keeps the lifetime totals
        assert engine.stats.samples == 32
        assert engine.stats.batches == first.stats.batches + second.stats.batches

    def test_measure_throughput_harness(
        self, engine_detector, small_dataset
    ):
        from repro.runtime import measure_throughput

        traffic = small_dataset.x_test[:12]
        results = measure_throughput(
            engine_detector, traffic, batch_sizes=(1, 4), repeats=1
        )
        assert set(results) == {1, 4}
        for report in results.values():
            assert report["samples"] == 12
            assert report["samples_per_sec"] > 0
            assert 0.0 <= report["rejection_rate"] <= 1.0
        assert np.array_equal(results[1]["scores"], results[4]["scores"])

    def test_empty_run(self, engine_detector, small_dataset):
        engine = DetectionEngine(engine_detector, batch_size=4)
        result = engine.run(small_dataset.x_test[:0])
        assert result.num_samples == 0
        assert result.rejection_rate == 0.0

    def test_monitor_submit_batch_matches_submit(
        self, engine_detector, small_dataset
    ):
        from repro.core import InferenceMonitor

        xs = small_dataset.x_test[:8]
        mon_a = InferenceMonitor(engine_detector, threshold=0.5)
        mon_b = InferenceMonitor(engine_detector, threshold=0.5)
        singles = [mon_a.submit(x[None]) for x in xs]
        batched = mon_b.submit_batch(xs)
        assert len(singles) == len(batched)
        for a, b in zip(singles, batched):
            assert a.accepted == b.accepted
            assert a.score == b.score
            assert a.similarity == b.similarity
            assert a.predicted_class == b.predicted_class
        assert mon_a.served == mon_b.served
        assert mon_a.rejected == mon_b.rejected
        assert mon_a.stats() == mon_b.stats()
