"""Automatic knob tuning over the accuracy-efficiency trade-off space.

The paper's framework "allows programmers to calibrate the algorithmic
knobs to explore the accuracy-cost trade-off that best suits an
application's needs" (Sec. I) and demonstrates the space manually
(Table II, Sec. VII-F).  This module closes the loop: given a latency
(or energy) budget expressed as a multiple of plain inference, it
sweeps the variant x theta grid on a :class:`~repro.eval.harness.
Workbench`, discards points over budget, and returns the most accurate
admissible design point plus the whole frontier for inspection.

The sweep reuses the workbench's caches, so repeated tuning calls (or
tuning after benchmarks already ran) cost little.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.eval.harness import Workbench

__all__ = [
    "DesignPoint",
    "TuningResult",
    "pareto_frontier",
    "select_within_budget",
    "sweep_design_space",
    "tune_knobs",
]

#: (variant, theta) grid the default sweep explores.  Absolute-threshold
#: variants ignore theta (phi is calibrated from profiling data), so
#: they appear once.
DEFAULT_GRID: Tuple[Tuple[str, float], ...] = (
    ("BwCu", 0.1),
    ("BwCu", 0.5),
    ("BwCu", 0.9),
    ("Hybrid", 0.5),
    ("BwAb", 0.5),
    ("FwAb", 0.5),
)


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated point of the trade-off space."""

    variant: str
    theta: float
    auc: float
    latency_overhead: float
    energy_overhead: float

    def within(self, latency_budget: float, energy_budget: float) -> bool:
        return (
            self.latency_overhead <= latency_budget
            and self.energy_overhead <= energy_budget
        )


@dataclass
class TuningResult:
    """Outcome of :func:`tune_knobs`."""

    best: Optional[DesignPoint]
    frontier: List[DesignPoint]
    rejected: List[DesignPoint]

    @property
    def satisfiable(self) -> bool:
        return self.best is not None


def sweep_design_space(
    workbench: Workbench,
    grid: Sequence[Tuple[str, float]] = DEFAULT_GRID,
    attacks: Tuple[str, ...] = ("bim", "fgsm"),
) -> List[DesignPoint]:
    """Measure AUC and modelled cost for every (variant, theta) point.

    ``attacks`` keeps the sweep affordable by default; pass the full
    five-attack tuple for paper-grade averages.
    """
    points = []
    for variant, theta in grid:
        auc = float(np.mean([
            workbench.variant_auc(variant, attack, theta=theta)
            for attack in attacks
        ]))
        cost = workbench.variant_cost(variant, theta=theta)
        points.append(DesignPoint(
            variant=variant,
            theta=theta,
            auc=auc,
            latency_overhead=cost.latency_overhead,
            energy_overhead=cost.energy_overhead,
        ))
    return points


def tune_knobs(
    workbench: Workbench,
    latency_budget: float = float("inf"),
    energy_budget: float = float("inf"),
    grid: Sequence[Tuple[str, float]] = DEFAULT_GRID,
    attacks: Tuple[str, ...] = ("bim", "fgsm"),
) -> TuningResult:
    """Pick the most accurate design point within the given budgets.

    Budgets are overhead multipliers relative to plain inference
    (``latency_budget=1.1`` means "at most 10% extra latency", the
    regime where the paper's FwAb lives).  Ties on AUC break toward
    lower latency.  ``best`` is ``None`` when no point fits, in which
    case the caller can inspect ``rejected`` for the nearest misses.
    """
    points = sweep_design_space(workbench, grid, attacks)
    return select_within_budget(points, latency_budget, energy_budget)


def select_within_budget(
    points: Sequence[DesignPoint],
    latency_budget: float = float("inf"),
    energy_budget: float = float("inf"),
) -> TuningResult:
    """Budgeted selection over already-measured design points.

    The measurement-free half of :func:`tune_knobs`, for callers that
    built their own points (e.g. from a custom sweep like
    ``examples/tradeoff_explorer.py``).  Ties on AUC break toward
    lower latency.
    """
    if latency_budget < 1.0 or energy_budget < 1.0:
        raise ValueError(
            "budgets are multiples of plain inference and must be >= 1.0"
        )
    admissible = [
        p for p in points if p.within(latency_budget, energy_budget)
    ]
    rejected = [
        p for p in points if not p.within(latency_budget, energy_budget)
    ]
    best = (
        max(admissible, key=lambda p: (p.auc, -p.latency_overhead))
        if admissible
        else None
    )
    return TuningResult(
        best=best, frontier=pareto_frontier(points), rejected=rejected
    )


def pareto_frontier(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Points not dominated in (higher AUC, lower latency), sorted by
    latency."""
    frontier = [
        p for p in points
        if not any(
            q.auc > p.auc and q.latency_overhead < p.latency_overhead
            for q in points
        )
    ]
    return sorted(frontier, key=lambda p: p.latency_overhead)
