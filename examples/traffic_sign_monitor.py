#!/usr/bin/env python
"""Traffic-sign monitor: the paper's motivating scenario.

The introduction motivates Ptolemy with the stop-sign attack: a small
perturbation makes a recognition DNN read a stop sign as a yield sign.
This example builds a synthetic traffic-sign classifier, runs a stream
of camera frames — some benign, some adversarially perturbed — through
a Ptolemy-protected inference service using the low-latency FwAb
variant, and rejects flagged frames.  It also reports what the
detection costs on the modelled accelerator.

Run: python examples/traffic_sign_monitor.py
"""

import numpy as np

from repro.attacks import PGD
from repro.compiler import apply_optimizations
from repro.core import (
    ExtractionConfig,
    InferenceMonitor,
    PtolemyDetector,
    calibrate_phi,
)
from repro.data import DatasetSpec, make_dataset
from repro.eval import render_table
from repro.hw import model_workload, simulate_detection
from repro.nn import TrainConfig, build_mini_resnet18, train_classifier

SIGN_NAMES = ["stop", "yield", "speed-30", "speed-60", "no-entry", "crossing"]


def main():
    # a 6-way "traffic sign" dataset: similar-looking classes, as sign
    # families are (red octagons vs red triangles...)
    dataset = make_dataset(DatasetSpec(
        num_classes=len(SIGN_NAMES), image_size=16, train_per_class=40,
        test_per_class=20, class_similarity=0.5, noise=0.08, seed=21,
    ))
    model = build_mini_resnet18(num_classes=len(SIGN_NAMES), seed=21)
    print("training the sign classifier...")
    train_classifier(model, dataset.x_train, dataset.y_train,
                     TrainConfig(epochs=8, seed=21))

    # protect it with FwAb: forward extraction is the variant designed
    # for exactly this always-on, latency-critical deployment
    num_layers = model.num_extraction_units()
    config = calibrate_phi(
        model, ExtractionConfig.fwab(num_layers),
        dataset.x_train[:6], quantile=0.95,
    )
    detector = PtolemyDetector(model, config, n_trees=60, seed=21)
    print("profiling class paths offline...")
    detector.profile(dataset.x_train, dataset.y_train, max_per_class=25)
    attack = PGD(eps=0.08, steps=12, seed=21)
    adv_fit = attack.generate(model, dataset.x_train[:40],
                              dataset.y_train[:40]).x_adv
    detector.fit_classifier(dataset.x_train[40:80], adv_fit)

    # deploy behind an InferenceMonitor: the threshold is calibrated on
    # a held-out validation split of *unseen* clean frames (training
    # frames score optimistically low because the canary paths were
    # profiled from them), allowing ~10% false rejections of clean
    # traffic
    monitor = InferenceMonitor.deploy(
        detector, dataset.x_test[-40:], target_fpr=0.10
    )
    print(f"calibrated rejection threshold: {monitor.threshold:.2f}")

    # simulate a camera stream: 12 frames, a third adversarial
    rng = np.random.default_rng(21)
    frames, truths, tampered = [], [], []
    stream_pool = len(dataset.x_test) - 40  # keep the validation split out
    for i in range(12):
        idx = rng.integers(0, stream_pool)
        frame = dataset.x_test[idx : idx + 1]
        label = int(dataset.y_test[idx])
        is_attack = i % 3 == 2
        if is_attack:
            frame = attack.generate(model, frame, np.array([label])).x_adv
        frames.append(frame)
        truths.append(label)
        tampered.append(is_attack)

    rows = []
    correct_decisions = 0
    for frame, truth, is_attack in zip(frames, truths, tampered):
        decision = monitor.submit(frame)
        action = "accept" if decision.accepted else "REJECT"
        ok = decision.accepted != is_attack
        correct_decisions += ok
        rows.append((
            SIGN_NAMES[truth],
            SIGN_NAMES[decision.predicted_class],
            "attack" if is_attack else "benign",
            f"{decision.score:.2f}",
            action,
            "ok" if ok else "MISS",
        ))
    print()
    print(render_table(
        "camera stream through the protected classifier",
        ["true sign", "predicted", "frame", "score", "action", "verdict"],
        rows,
    ))
    stats = monitor.stats()
    print(f"\ncorrect accept/reject decisions: {correct_decisions}/12")
    print(f"monitor stats: served={stats.served} rejected={stats.rejected} "
          f"rolling rejection rate={stats.rejection_rate:.2f}")

    # what does the protection cost on the modelled accelerator?
    model.forward(dataset.x_test[:1])
    workload = model_workload(model)
    trace = detector.extractor.extract(dataset.x_test[:1]).trace
    schedule = apply_optimizations(config, num_layers)
    cost = simulate_detection(workload, config, trace, schedule)
    print(f"\nhardware cost of FwAb protection: "
          f"latency {100 * (cost.latency_overhead - 1):.1f}% over plain "
          f"inference, energy {100 * (cost.energy_overhead - 1):.1f}% "
          f"(paper: ~2% latency on AlexNet)")


if __name__ == "__main__":
    main()
