"""Optional numba JIT backend, entirely behind a lazy import.

The container image may or may not ship numba; this backend must never
make the import decision for the caller.  Three degradation layers:

* numba absent → :func:`numba_available` is False, the registry
  resolves ``"numba"`` to the numpy reference (with a warning) and
  reports the effective backend.
* numba present but JIT compilation fails (unsupported platform,
  threading layer missing) → the backend flips to ``degraded`` on
  first use and every primitive falls through to the numpy reference.
* an individual call hits an unsupported operand shape → that call
  falls through; the backend stays live for the shapes it handles.

All kernels are plain loops over ``(N, words)`` uint64 matrices with a
SWAR popcount, so their integer counts — and therefore every float
score derived from them — are bit-identical to numpy's
``bitwise_count`` path.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from repro.core.backends.base import KernelBackend
from repro.core.bitmask import validate_segment_offsets

__all__ = ["NumbaBackend", "numba_available"]


def numba_available() -> bool:
    """True when numba imports cleanly (no compilation attempted)."""
    try:
        import numba  # noqa: F401
    except Exception:  # noqa: BLE001 - any import-time failure means no JIT
        return False
    return True


# SWAR popcount constants (Hacker's Delight 5-1), kept as uint64
# scalars so the JIT sees fixed-width unsigned arithmetic.
_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)
_S1 = np.uint64(1)
_S2 = np.uint64(2)
_S4 = np.uint64(4)
_S56 = np.uint64(56)


def _compile_kernels():
    """Build and warm the JIT kernels; raises on any compile failure so
    the caller can degrade."""
    from numba import njit, prange

    @njit(inline="always")
    def popcount64(x):
        x = x - ((x >> _S1) & _M1)
        x = (x & _M2) + ((x >> _S2) & _M2)
        x = (x + (x >> _S4)) & _M4
        return np.int64((x * _H01) >> _S56)

    @njit(parallel=True, cache=False)
    def pop_rows(a):
        n, w = a.shape
        out = np.zeros(n, dtype=np.int64)
        for i in prange(n):
            acc = np.int64(0)
            for j in range(w):
                acc += popcount64(a[i, j])
            out[i] = acc
        return out

    @njit(cache=False)
    def or_reduce(a):
        n, w = a.shape
        out = np.zeros(w, dtype=np.uint64)
        for i in range(n):
            for j in range(w):
                out[j] |= a[i, j]
        return out

    @njit(parallel=True, cache=False)
    def and_pop(a, b):
        n, w = a.shape
        bn = b.shape[0]
        out = np.zeros(n, dtype=np.int64)
        for i in prange(n):
            bi = i if bn == n else 0
            acc = np.int64(0)
            for j in range(w):
                acc += popcount64(a[i, j] & b[bi, j])
            out[i] = acc
        return out

    @njit(parallel=True, cache=False)
    def and_or_pop(a, b):
        n, w = a.shape
        bn = b.shape[0]
        inter = np.zeros(n, dtype=np.int64)
        union = np.zeros(n, dtype=np.int64)
        for i in prange(n):
            bi = i if bn == n else 0
            acc_i = np.int64(0)
            acc_u = np.int64(0)
            for j in range(w):
                acc_i += popcount64(a[i, j] & b[bi, j])
                acc_u += popcount64(a[i, j] | b[bi, j])
            inter[i] = acc_i
            union[i] = acc_u
        return inter, union

    @njit(parallel=True, cache=False)
    def seg_pop(a, starts, ends):
        n = a.shape[0]
        s = starts.shape[0]
        out = np.zeros((n, s), dtype=np.int64)
        for i in prange(n):
            for k in range(s):
                acc = np.int64(0)
                for j in range(starts[k], ends[k]):
                    acc += popcount64(a[i, j])
                out[i, k] = acc
        return out

    @njit(parallel=True, cache=False)
    def seg_and_pop(a, b, starts, ends):
        n = a.shape[0]
        bn = b.shape[0]
        s = starts.shape[0]
        out = np.zeros((n, s), dtype=np.int64)
        for i in prange(n):
            bi = i if bn == n else 0
            for k in range(s):
                acc = np.int64(0)
                for j in range(starts[k], ends[k]):
                    acc += popcount64(a[i, j] & b[bi, j])
                out[i, k] = acc
        return out

    kernels = {
        "pop_rows": pop_rows,
        "or_reduce": or_reduce,
        "and_pop": and_pop,
        "and_or_pop": and_or_pop,
        "seg_pop": seg_pop,
        "seg_and_pop": seg_and_pop,
    }
    # Warm every signature now so compile failures surface here, inside
    # the caller's try block, instead of mid-batch.
    tiny = np.ones((2, 2), dtype=np.uint64)
    seg = np.zeros(1, dtype=np.intp)
    end = np.full(1, 2, dtype=np.intp)
    kernels["pop_rows"](tiny)
    kernels["or_reduce"](tiny)
    kernels["and_pop"](tiny, tiny)
    kernels["and_or_pop"](tiny, tiny)
    kernels["seg_pop"](tiny, seg, end)
    kernels["seg_and_pop"](tiny, tiny, seg, end)
    return kernels


class NumbaBackend(KernelBackend):
    """JIT-compiled loop kernels with per-call numpy fallback."""

    name = "numba"

    def __init__(self):
        self._kernels: Optional[dict] = None
        self.degraded = not numba_available()
        self.fallback_reason: Optional[str] = (
            "numba is not importable" if self.degraded else None
        )

    # -- compilation ----------------------------------------------------
    def _ensure(self) -> Optional[dict]:
        if self._kernels is None and not self.degraded:
            try:
                self._kernels = _compile_kernels()
            except Exception as exc:  # noqa: BLE001 - degrade, never break the batch
                self._degrade(f"JIT compilation failed: {exc!r}")
        return self._kernels

    def _degrade(self, reason: str) -> None:
        self.degraded = True
        self.fallback_reason = reason
        self._kernels = None
        warnings.warn(
            f"numba backend degraded to numpy: {reason}",
            RuntimeWarning,
            stacklevel=3,
        )

    @property
    def effective_name(self) -> str:
        """What actually computes: ``"numba"``, or the fallback."""
        return "numpy" if self.degraded else "numba"

    # -- operand normalisation ------------------------------------------
    @staticmethod
    def _matrix(words: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(
            np.atleast_2d(np.asarray(words, dtype=np.uint64))
        )

    @staticmethod
    def _jit_compatible(a: np.ndarray, b: np.ndarray) -> bool:
        """The loop kernels handle broadcast-row or matching-rows
        canaries; anything else falls through to numpy (which raises
        the same errors the reference would)."""
        return b.shape[1] == a.shape[1] and b.shape[0] in (1, a.shape[0])

    # -- primitives -----------------------------------------------------
    def batch_or(self, words: np.ndarray) -> np.ndarray:
        kernels = self._ensure()
        if kernels is None:
            return super().batch_or(words)
        a = self._matrix(words)
        if a.shape[0] == 0:
            return super().batch_or(words)
        return kernels["or_reduce"](a)

    def batch_popcount(self, words: np.ndarray) -> np.ndarray:
        kernels = self._ensure()
        if kernels is None:
            return super().batch_popcount(words)
        return kernels["pop_rows"](self._matrix(words))

    def batch_and_popcount(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        kernels = self._ensure()
        am = self._matrix(a)
        bm = self._matrix(b)
        if kernels is None or not self._jit_compatible(am, bm):
            return super().batch_and_popcount(a, b)
        return kernels["and_pop"](am, bm)

    def batch_containment(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        kernels = self._ensure()
        am = self._matrix(a)
        bm = self._matrix(b)
        if kernels is None or not self._jit_compatible(am, bm):
            return super().batch_containment(a, b)
        ones = kernels["pop_rows"](am)
        hits = kernels["and_pop"](am, bm)
        out = np.zeros(ones.shape[0], dtype=np.float64)
        nz = ones > 0
        out[nz] = hits[nz] / ones[nz]
        return out

    def batch_jaccard(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        kernels = self._ensure()
        am = self._matrix(a)
        bm = self._matrix(b)
        if kernels is None or not self._jit_compatible(am, bm):
            return super().batch_jaccard(a, b)
        inter, union = kernels["and_or_pop"](am, bm)
        out = np.ones(am.shape[0], dtype=np.float64)
        nz = union > 0
        out[nz] = inter[nz] / union[nz]
        return out

    def segment_popcount(
        self, words: np.ndarray, offsets: np.ndarray
    ) -> np.ndarray:
        kernels = self._ensure()
        if kernels is None:
            return super().segment_popcount(words, offsets)
        a = self._matrix(words)
        starts, ends = validate_segment_offsets(offsets, a.shape[1])
        return kernels["seg_pop"](a, starts, ends)

    def segment_and_popcount(
        self, a: np.ndarray, b: np.ndarray, offsets: np.ndarray
    ) -> np.ndarray:
        kernels = self._ensure()
        am = self._matrix(a)
        bm = self._matrix(b)
        if kernels is None or not self._jit_compatible(am, bm):
            return super().segment_and_popcount(a, b, offsets)
        starts, ends = validate_segment_offsets(offsets, am.shape[1])
        return kernels["seg_and_pop"](am, bm, starts, ends)
