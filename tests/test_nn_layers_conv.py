"""Unit tests for Conv2d: numerics, gradients, and the receptive-field/
partial-sum introspection the extraction engine depends on."""

import numpy as np
import pytest

from repro.nn.layers import Conv2d


@pytest.fixture
def conv():
    return Conv2d(2, 3, kernel_size=3, padding=1, rng=np.random.default_rng(1))


def naive_conv(x, w, b, stride, padding):
    n, c_in, h, wdt = x.shape
    c_out, _, k, _ = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (h + 2 * padding - k) // stride + 1
    ow = (wdt + 2 * padding - k) // stride + 1
    out = np.zeros((n, c_out, oh, ow))
    for ni in range(n):
        for co in range(c_out):
            for i in range(oh):
                for j in range(ow):
                    patch = xp[ni, :, i * stride : i * stride + k,
                               j * stride : j * stride + k]
                    out[ni, co, i, j] = (patch * w[co]).sum() + b[co]
    return out


class TestForward:
    def test_matches_naive(self, conv, rng):
        x = rng.normal(size=(2, 2, 5, 5))
        out = conv.forward(x)
        ref = naive_conv(x, conv.weight.data, conv.bias.data, 1, 1)
        assert np.allclose(out, ref)

    def test_stride_two(self, rng):
        conv = Conv2d(1, 2, 3, stride=2, padding=1, rng=np.random.default_rng(2))
        x = rng.normal(size=(1, 1, 8, 8))
        out = conv.forward(x)
        assert out.shape == (1, 2, 4, 4)
        ref = naive_conv(x, conv.weight.data, conv.bias.data, 2, 1)
        assert np.allclose(out, ref)

    def test_channel_validation(self, conv):
        with pytest.raises(ValueError):
            conv.forward(np.zeros((1, 3, 5, 5)))


class TestBackward:
    def test_input_gradient_matches_numerical(self, rng, numgrad):
        conv = Conv2d(1, 2, 3, padding=1, rng=np.random.default_rng(3))
        x = rng.normal(size=(1, 1, 4, 4))
        target = rng.normal(size=(1, 2, 4, 4))

        def loss(xv):
            return float(((conv.forward(xv) - target) ** 2).sum())

        out = conv.forward(x)
        analytic = conv.backward(2.0 * (out - target))
        numeric = numgrad(loss, x.copy())
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_weight_gradient_matches_numerical(self, rng):
        conv = Conv2d(1, 1, 3, padding=0, rng=np.random.default_rng(4))
        x = rng.normal(size=(1, 1, 4, 4))
        out = conv.forward(x)
        conv.zero_grad()
        conv.backward(np.ones_like(out))
        eps = 1e-6
        w = conv.weight.data
        for idx in [(0, 0, 0, 0), (0, 0, 1, 2), (0, 0, 2, 2)]:
            old = w[idx]
            w[idx] = old + eps
            up = conv.forward(x).sum()
            w[idx] = old - eps
            down = conv.forward(x).sum()
            w[idx] = old
            assert conv.weight.grad[idx] == pytest.approx(
                (up - down) / (2 * eps), abs=1e-4
            )


class TestIntrospection:
    def test_partial_sums_reconstruct_output(self, conv, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        out = conv.forward(x)
        flat = out[0].ravel()
        for pos in [0, 7, 24, 50, flat.size - 1]:
            psums = conv.partial_sums(pos)
            c = pos // 25
            assert psums.sum() + conv.bias.data[c] == pytest.approx(flat[pos])

    def test_receptive_field_interior(self, conv, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        conv.forward(x)
        # output (0, 2, 2): interior position, full 2*3*3 receptive field
        pos = 2 * 5 + 2
        rf = conv.receptive_field(pos)
        assert rf.size == 18
        # all positions must be inside the input feature map
        assert rf.min() >= 0 and rf.max() < 2 * 25

    def test_receptive_field_corner_excludes_padding(self, conv, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        conv.forward(x)
        rf = conv.receptive_field(0)  # corner output: 2x2 valid window x2ch
        assert rf.size == 8

    def test_rf_and_psums_aligned(self, conv, rng):
        """psums[k] must be the contribution of input element rf[k]."""
        x = rng.normal(size=(1, 2, 5, 5))
        out = conv.forward(x)
        pos = 1 * 25 + 2 * 5 + 3
        rf = conv.receptive_field(pos)
        psums = conv.partial_sums(pos)
        assert rf.shape == psums.shape
        # zeroing one input element must remove exactly its partial sum
        k = 5
        x2 = x.copy()
        x2.reshape(1, -1)[0, rf[k]] = 0.0
        out2 = conv.forward(x2)
        delta = out[0].ravel()[pos] - out2[0].ravel()[pos]
        assert delta == pytest.approx(psums[k])

    def test_mac_count(self, conv, rng):
        conv.forward(rng.normal(size=(1, 2, 5, 5)))
        assert conv.mac_count() == 3 * 25 * 18
        assert conv.nominal_rf_size() == 18
