#!/usr/bin/env python
"""Import every module under ``src/repro`` and fail on any error.

Much of the package imports lazily (the CLI, the Workbench, the
benchmarks), so a broken import in a rarely-exercised module can slip
past the unit tests.  CI runs this as its own job: every module —
public or internal — must import cleanly on a bare ``numpy``/``scipy``
environment.
"""

from __future__ import annotations

import importlib
import sys
import traceback
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def iter_module_names():
    """Dotted names of every module under src/repro, packages included."""
    for path in sorted((SRC / "repro").rglob("*.py")):
        relative = path.relative_to(SRC)
        if relative.name == "__init__.py":
            parts = relative.parent.parts
        else:
            parts = relative.with_suffix("").parts
        yield ".".join(parts)


def main() -> int:
    failures = []
    modules = list(iter_module_names())
    for name in modules:
        try:
            importlib.import_module(name)
        except Exception:  # noqa: BLE001 - any failure is the finding
            failures.append(name)
            print(f"FAIL {name}")
            traceback.print_exc()
    print(f"imported {len(modules) - len(failures)}/{len(modules)} "
          f"modules under src/repro")
    if failures:
        print("broken imports: " + ", ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
