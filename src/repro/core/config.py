"""Algorithmic knobs of the Ptolemy detection framework (Sec. III-C).

Three knobs control how activation paths are extracted:

* **Extraction direction** — backward (from the predicted class) or
  forward (per-layer, overlappable with inference).  Directions may not
  be mixed within one network (Sec. III-D).
* **Thresholding mechanism** — cumulative (sort partial sums, take the
  minimal set reaching ``theta`` of the neuron value) or absolute
  (compare against ``phi``).  Selectable per layer.
* **Selective extraction** — skip layers entirely: a termination layer
  for backward extraction ("early-termination") or a start layer for
  forward extraction ("late-start").

The four named variants evaluated in the paper (Sec. VI-B) are exposed
as constructors: :meth:`ExtractionConfig.bwcu`, ``bwab``, ``fwab`` and
``hybrid``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = [
    "Direction",
    "Thresholding",
    "LayerSpec",
    "ExtractionConfig",
]


class Direction(enum.Enum):
    """Which way important neurons are identified across layers."""

    BACKWARD = "backward"
    FORWARD = "forward"


class Thresholding(enum.Enum):
    """How important neurons are selected within a layer."""

    CUMULATIVE = "cumulative"
    ABSOLUTE = "absolute"


@dataclass(frozen=True)
class LayerSpec:
    """Extraction settings for one extraction unit (conv/linear layer).

    ``threshold`` is ``theta`` for cumulative mode (a coverage fraction
    in [0, 1]) and ``phi`` for absolute mode (a raw partial-sum or
    activation threshold, usually produced by phi calibration).
    """

    mechanism: Thresholding
    threshold: float
    extract: bool = True

    def __post_init__(self):
        if self.mechanism is Thresholding.CUMULATIVE and not 0.0 <= self.threshold <= 1.0:
            raise ValueError(
                f"cumulative threshold theta must be in [0, 1], got {self.threshold}"
            )


@dataclass
class ExtractionConfig:
    """A complete per-network extraction recipe.

    ``layers[i]`` configures extraction unit ``i`` (0-based, topological
    order over the network's conv/linear layers).

    ``backend`` optionally names the kernel backend the detector's
    batched score path should run on (see
    :mod:`repro.core.backends`); ``None`` defers to the environment
    override and then the numpy default.  Backends are bit-identical,
    so this knob never changes scores or decisions — it travels with
    the config (and the sharded service's state broadcast) purely so a
    deployment's throughput choice is reproducible.
    """

    direction: Direction
    layers: List[LayerSpec]
    backend: Optional[str] = None

    def __post_init__(self):
        if not self.layers:
            raise ValueError("ExtractionConfig needs at least one layer spec")

    # -- constructors for the paper's variants ---------------------------
    @classmethod
    def bwcu(cls, num_layers: int, theta: float = 0.5,
             termination_layer: int = 1) -> "ExtractionConfig":
        """Backward extraction with cumulative thresholds (BwCu).

        ``termination_layer`` follows the paper's 1-based indexing
        (Fig. 16): extraction covers layers ``termination_layer .. L``;
        1 extracts everything, ``L`` extracts only the last layer.
        """
        return cls(
            Direction.BACKWARD,
            _selective(num_layers, Thresholding.CUMULATIVE, theta,
                       first_extracted=termination_layer),
        )

    @classmethod
    def bwab(cls, num_layers: int, phi: float = 0.0,
             termination_layer: int = 1) -> "ExtractionConfig":
        """Backward extraction with absolute thresholds (BwAb)."""
        return cls(
            Direction.BACKWARD,
            _selective(num_layers, Thresholding.ABSOLUTE, phi,
                       first_extracted=termination_layer),
        )

    @classmethod
    def fwab(cls, num_layers: int, phi: float = 0.0,
             start_layer: int = 1) -> "ExtractionConfig":
        """Forward extraction with absolute thresholds (FwAb).

        ``start_layer`` is 1-based (Fig. 17): extraction covers layers
        ``start_layer .. L`` ("late-start").
        """
        return cls(
            Direction.FORWARD,
            _selective(num_layers, Thresholding.ABSOLUTE, phi,
                       first_extracted=start_layer),
        )

    @classmethod
    def fwcu(cls, num_layers: int, theta: float = 0.5,
             start_layer: int = 1) -> "ExtractionConfig":
        """Forward extraction with cumulative thresholds."""
        return cls(
            Direction.FORWARD,
            _selective(num_layers, Thresholding.CUMULATIVE, theta,
                       first_extracted=start_layer),
        )

    @classmethod
    def hybrid(cls, num_layers: int, theta: float = 0.5,
               phi: float = 0.0) -> "ExtractionConfig":
        """The paper's Hybrid variant: BwAb on the first half of the
        network, BwCu on the rest (Sec. VI-B)."""
        half = num_layers // 2
        layers = [
            LayerSpec(Thresholding.ABSOLUTE, phi)
            if i < half
            else LayerSpec(Thresholding.CUMULATIVE, theta)
            for i in range(num_layers)
        ]
        return cls(Direction.BACKWARD, layers)

    # -- helpers ----------------------------------------------------------
    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def extracted_indices(self) -> List[int]:
        """0-based indices of the units that actually extract."""
        return [i for i, spec in enumerate(self.layers) if spec.extract]

    def with_phi(self, phi_per_layer: Dict[int, float]) -> "ExtractionConfig":
        """Return a copy with absolute thresholds overridden per layer
        (used by phi calibration)."""
        layers = []
        for i, spec in enumerate(self.layers):
            if spec.mechanism is Thresholding.ABSOLUTE and i in phi_per_layer:
                layers.append(
                    LayerSpec(spec.mechanism, phi_per_layer[i], spec.extract)
                )
            else:
                layers.append(spec)
        return ExtractionConfig(self.direction, layers, backend=self.backend)

    def describe(self) -> str:
        """One-line human-readable summary."""
        extracted = self.extracted_indices()
        mechanisms = {self.layers[i].mechanism.value for i in extracted}
        return (
            f"{self.direction.value}/{'+'.join(sorted(mechanisms))} "
            f"layers {min(extracted) + 1}..{max(extracted) + 1} of {self.num_layers}"
        )


def _selective(num_layers: int, mechanism: Thresholding, threshold: float,
               first_extracted: int) -> List[LayerSpec]:
    """Specs where 1-based layers ``first_extracted .. num_layers`` extract."""
    if not 1 <= first_extracted <= num_layers:
        raise ValueError(
            f"first extracted layer must be in 1..{num_layers}, "
            f"got {first_extracted}"
        )
    return [
        LayerSpec(mechanism, threshold, extract=(i + 1) >= first_extracted)
        for i in range(num_layers)
    ]
