"""repro.core — the Ptolemy detection framework (the paper's primary
contribution): path extraction, canary class paths, similarity, and
the random-forest adversarial classifier."""

from repro.core.config import Direction, ExtractionConfig, LayerSpec, Thresholding
from repro.core.backends import (
    KERNEL_BACKEND_ENV,
    KernelBackend,
    available_backends,
    get_backend,
    resolve_backend,
)
from repro.core.bitmask import (
    Bitmask,
    batch_and_popcount,
    batch_containment,
    batch_jaccard,
    batch_or,
    batch_popcount,
    pack_bool_matrix,
    unpack_word_matrix,
)
from repro.core.path import (
    ActivationPath,
    ClassPath,
    PackedPathBatch,
    PathLayout,
    batch_path_similarity,
    batch_per_tap_similarity,
    path_similarity,
    per_tap_similarity,
    symmetric_similarity,
)
from repro.core.trace import ExtractionTrace, UnitTrace
from repro.core.extraction import (
    BatchExtractionResult,
    ExtractionResult,
    PathExtractor,
    calibrate_phi,
)
from repro.core.profiling import (
    ClassPathSet,
    PackedCanaries,
    profile_class_paths,
    saturation_curve,
)
from repro.core.metrics import DetectionReport, detection_report, roc_auc, roc_curve
from repro.core.classifier import DecisionTree, RandomForest
from repro.core.detector import (
    BatchDetectionResult,
    DetectionOutcome,
    PtolemyDetector,
)
from repro.core.explain import TapDivergence, divergence_report, input_saliency
from repro.core.monitor import (
    InferenceMonitor,
    MonitorDecision,
    MonitorStats,
    calibrate_threshold,
)
from repro.core.interface import DetectionProgram, fig6_program
from repro.core.serialization import (
    config_from_dict,
    config_to_dict,
    detector_from_state,
    detector_to_state,
    load_class_paths,
    load_detector,
    save_class_paths,
    save_detector,
)

__all__ = [
    "Direction",
    "ExtractionConfig",
    "LayerSpec",
    "Thresholding",
    "KERNEL_BACKEND_ENV",
    "KernelBackend",
    "available_backends",
    "get_backend",
    "resolve_backend",
    "Bitmask",
    "batch_and_popcount",
    "batch_containment",
    "batch_jaccard",
    "batch_or",
    "batch_popcount",
    "pack_bool_matrix",
    "unpack_word_matrix",
    "ActivationPath",
    "ClassPath",
    "PackedPathBatch",
    "PathLayout",
    "path_similarity",
    "per_tap_similarity",
    "symmetric_similarity",
    "batch_path_similarity",
    "batch_per_tap_similarity",
    "ExtractionTrace",
    "UnitTrace",
    "ExtractionResult",
    "BatchExtractionResult",
    "PathExtractor",
    "calibrate_phi",
    "ClassPathSet",
    "PackedCanaries",
    "profile_class_paths",
    "saturation_curve",
    "DetectionReport",
    "detection_report",
    "roc_auc",
    "roc_curve",
    "DecisionTree",
    "RandomForest",
    "DetectionOutcome",
    "BatchDetectionResult",
    "PtolemyDetector",
    "TapDivergence",
    "divergence_report",
    "input_saliency",
    "InferenceMonitor",
    "MonitorDecision",
    "MonitorStats",
    "calibrate_threshold",
    "DetectionProgram",
    "fig6_program",
    "save_class_paths",
    "load_class_paths",
    "config_to_dict",
    "config_from_dict",
    "save_detector",
    "load_detector",
    "detector_to_state",
    "detector_from_state",
]
