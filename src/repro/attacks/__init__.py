"""repro.attacks — adversarial attacks covering all three perturbation
measures the paper evaluates (L0: JSMA; L2: CW-L2, DeepFool, adaptive;
L-inf: FGSM, BIM, PGD), plus the adaptive activation-matching attack of
Sec. VII-E."""

from repro.attacks.base import Attack, AttackResult, input_gradient
from repro.attacks.fgsm import FGSM
from repro.attacks.bim import BIM
from repro.attacks.pgd import PGD
from repro.attacks.jsma import JSMA
from repro.attacks.deepfool import DeepFool
from repro.attacks.cw import CWL2
from repro.attacks.adaptive import AdaptiveAttack, AdaptiveSample
from repro.attacks.annealing import AnnealingPathAttack, AnnealingResult
from repro.attacks.bpda import BPDA

#: The paper's five non-adaptive attacks (Sec. VI-A).
STANDARD_ATTACKS = {
    "bim": BIM,
    "cwl2": CWL2,
    "deepfool": DeepFool,
    "fgsm": FGSM,
    "jsma": JSMA,
}

__all__ = [
    "Attack",
    "AttackResult",
    "input_gradient",
    "FGSM",
    "BIM",
    "PGD",
    "JSMA",
    "DeepFool",
    "CWL2",
    "AdaptiveAttack",
    "AdaptiveSample",
    "AnnealingPathAttack",
    "AnnealingResult",
    "BPDA",
    "STANDARD_ATTACKS",
]
