"""Kernel backend tests: registry resolution, per-backend bit-identity
against the numpy reference, graceful numba degradation, and the
compiler's batch kernel schedules executing on the ISS in the tiled
backend's exact traversal order.

The contract under test is the one the whole PR rides on: backend
choice is a throughput knob, never an accuracy one.  Every primitive,
on every backend, at every batch size — including size 1, a prime, and
odd bit lengths that exercise the tail mask — must reproduce the
reference kernels bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import (
    compile_batch_containment,
    compile_batch_per_tap,
)
from repro.core import ExtractionConfig
from repro.core.backends import (
    KERNEL_BACKEND_ENV,
    KernelBackend,
    NumbaBackend,
    TiledBackend,
    available_backends,
    get_backend,
    numba_available,
    plan_row_tiles,
    resolve_backend,
    tile_rows_for,
)
from repro.core.bitmask import (
    batch_and_popcount,
    batch_containment,
    batch_jaccard,
    batch_or,
    batch_popcount,
    pack_bool_matrix,
    segment_popcount,
)
from repro.isa import BatchKernelUnit, MachineError

# Backends under test: the shared registry instances plus a tiled
# instance forced to actually tile (min_rows=1, a fixed worker budget)
# so the threaded path is exercised even on single-CPU CI hosts, and a
# numba instance (which degrades to reference kernels where the JIT is
# absent — the degraded path must be bit-identical too).
BACKENDS = {
    "numpy": lambda: KernelBackend(),
    "tiled-auto": lambda: TiledBackend(),
    "tiled-forced": lambda: TiledBackend(min_rows=1, workers=4),
    "tiled-tiny-tiles": lambda: TiledBackend(
        min_rows=1, workers=4, tile_bytes=64
    ),
    "numba": lambda: NumbaBackend(),
}

BATCH_SIZES = (1, 7, 64, 1000)
#: Bit lengths chosen to land mid-word (tail mask active), on an exact
#: word boundary, and inside a single word.
BIT_LENGTHS = (37, 128, 777)


def _packed(rng, n, bits, density=0.3):
    return pack_bool_matrix(rng.random((n, bits)) < density)


@pytest.fixture(params=sorted(BACKENDS))
def backend(request):
    return BACKENDS[request.param]()


class TestBackendEquivalence:
    @pytest.mark.parametrize("n", BATCH_SIZES)
    @pytest.mark.parametrize("bits", BIT_LENGTHS)
    def test_all_primitives_bit_identical(self, backend, n, bits):
        rng = np.random.default_rng(n * 10_000 + bits)
        a = _packed(rng, n, bits)
        b_row = _packed(rng, 1, bits, density=0.4)
        b_full = _packed(rng, n, bits, density=0.4)
        half = a.shape[1] // 2
        offsets = np.array([0, half, half], dtype=np.intp)

        assert np.array_equal(backend.batch_or(a), batch_or(a))
        assert np.array_equal(backend.batch_popcount(a), batch_popcount(a))
        for b in (b_row, b_full):
            assert np.array_equal(
                backend.batch_and_popcount(a, b), batch_and_popcount(a, b)
            )
            # float scores must match bit for bit, not to a tolerance:
            # every backend performs the same int counts then the same
            # IEEE division.
            assert np.array_equal(
                backend.batch_containment(a, b), batch_containment(a, b)
            )
            assert np.array_equal(
                backend.batch_jaccard(a, b), batch_jaccard(a, b)
            )
            assert np.array_equal(
                backend.segment_and_popcount(a, b, offsets),
                segment_popcount(a & np.atleast_2d(b), offsets),
            )
        assert np.array_equal(
            backend.segment_popcount(a, offsets),
            segment_popcount(a, offsets),
        )

    def test_empty_and_all_ones_rows(self, backend):
        rng = np.random.default_rng(9)
        bits = 130
        a = pack_bool_matrix(np.vstack([
            np.zeros((2, bits), dtype=bool),
            np.ones((2, bits), dtype=bool),
            rng.random((4, bits)) < 0.5,
        ]))
        b = _packed(rng, 1, bits)
        assert np.array_equal(
            backend.batch_containment(a, b), batch_containment(a, b)
        )
        assert np.array_equal(
            backend.batch_jaccard(a, b), batch_jaccard(a, b)
        )


class TestTiling:
    def test_plan_row_tiles_covers_exactly(self):
        assert plan_row_tiles(10, 4) == [(0, 4), (4, 8), (8, 10)]
        assert plan_row_tiles(8, 4) == [(0, 4), (4, 8)]
        assert plan_row_tiles(3, 100) == [(0, 3)]
        assert plan_row_tiles(0, 4) == []
        with pytest.raises(ValueError):
            plan_row_tiles(-1, 4)
        with pytest.raises(ValueError):
            plan_row_tiles(4, 0)

    def test_tile_rows_for_balances_across_parts(self):
        # cache budget alone
        assert tile_rows_for(10_000, 1024, tile_bytes=1 << 20) == 1024
        # tightened so `parts` threads all get work
        assert tile_rows_for(1000, 8, tile_bytes=1 << 20, parts=4) == 250
        # never below one row, even for huge rows
        assert tile_rows_for(10, 1 << 30, tile_bytes=1 << 20) == 1

    def test_small_batches_fall_through_to_numpy(self):
        tiled = TiledBackend()  # default min_rows well above 8
        a = _packed(np.random.default_rng(0), 8, 200)
        assert tiled._plan(a) is None
        assert np.array_equal(tiled.batch_popcount(a), batch_popcount(a))

    def test_forced_tiling_really_tiles(self):
        tiled = TiledBackend(min_rows=1, workers=4)
        a = _packed(np.random.default_rng(1), 1000, 200)
        plan = tiled._plan(a)
        assert plan is not None and len(plan) >= 2
        assert plan == plan_row_tiles(1000, plan[0][1] - plan[0][0])


class TestResolution:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)
        assert resolve_backend().name == "numpy"

    def test_explicit_beats_env_beats_config(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "numpy")
        assert resolve_backend("tiled", config_backend="numpy").name == "tiled"
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "tiled")
        assert resolve_backend(config_backend="numpy").name == "tiled"
        monkeypatch.delenv(KERNEL_BACKEND_ENV)
        assert resolve_backend(config_backend="tiled").name == "tiled"

    def test_unknown_backend_is_an_error(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("cuda")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("cuda")

    def test_instances_are_shared(self):
        assert get_backend("tiled") is get_backend("tiled")

    def test_available_backends_reports_numba_truthfully(self):
        avail = available_backends()
        assert avail["numpy"] and avail["tiled"]
        assert avail["numba"] == numba_available()

    def test_numba_fallback_when_unavailable(self, monkeypatch):
        """Forcing the numba leg unavailable must degrade to numpy with
        a warning, never fail — on hosts with numba installed the same
        code path is exercised by monkeypatching availability off."""
        import repro.core.backends as backends_mod

        monkeypatch.setattr(backends_mod, "numba_available", lambda: False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            resolved = resolve_backend("numba")
        assert resolved.name == "numpy"

    def test_degraded_numba_instance_still_bit_identical(self):
        """A NumbaBackend that cannot JIT (absent or broken) must serve
        the reference kernels unchanged."""
        backend = NumbaBackend()
        rng = np.random.default_rng(3)
        a = _packed(rng, 64, 777)
        b = _packed(rng, 1, 777)
        assert np.array_equal(
            backend.batch_containment(a, b), batch_containment(a, b)
        )
        if not numba_available():
            backend._ensure()
            assert backend.degraded
            assert backend.effective_name == "numpy"


class TestConfigPlumbing:
    def test_config_carries_backend_through_with_phi(self):
        config = ExtractionConfig.fwab(3)
        assert config.backend is None
        tagged = ExtractionConfig(
            config.direction, config.layers, backend="tiled"
        )
        phis = [0.1] * len(tagged.layers)
        assert tagged.with_phi(phis).backend == "tiled"

    def test_config_backend_round_trips_serialization(self):
        from repro.core import config_from_dict, config_to_dict

        config = ExtractionConfig.fwab(2)
        tagged = ExtractionConfig(
            config.direction, config.layers, backend="tiled"
        )
        data = config_to_dict(tagged)
        assert config_from_dict(data).backend == "tiled"
        # pre-backend dicts (older saved detectors) must still load
        data.pop("backend")
        assert config_from_dict(data).backend is None


class TestDetectorBackends:
    @pytest.fixture()
    def scored_traffic(self, serving_detector, small_dataset):
        xs = small_dataset.x_test[:20]
        original = serving_detector.kernel_backend
        yield serving_detector, xs
        serving_detector.set_backend(original)

    def test_detector_scores_identical_across_backends(self, scored_traffic):
        from repro.runtime import DetectionEngine

        detector, xs = scored_traffic
        detector.set_backend("numpy")
        reference = DetectionEngine(detector, batch_size=8).run(xs)
        for name in ("tiled", "numba"):
            engine = DetectionEngine(detector, batch_size=8, backend=name)
            if name == "numba" and not numba_available():
                assert engine.kernel_backend == "numpy"
            run = engine.run(xs)
            if not np.array_equal(run.scores, reference.scores):
                raise RuntimeError(f"{name} backend changed scores")
            assert np.array_equal(
                run.is_adversarial, reference.is_adversarial
            )
            assert np.array_equal(
                run.predicted_classes, reference.predicted_classes
            )

    def test_forced_tiled_instance_scores_identical(self, scored_traffic):
        """Swap the detector onto a tiling-forced instance so the
        threaded path runs under the real score pipeline even on a
        single-CPU host."""
        from repro.core import detector as detector_mod
        from repro.runtime import DetectionEngine

        detector, xs = scored_traffic
        detector.set_backend("numpy")
        reference = DetectionEngine(detector, batch_size=8).run(xs)
        detector.kernels = TiledBackend(min_rows=1, workers=4)
        run = DetectionEngine(detector, batch_size=8).run(xs)
        assert detector_mod is not None
        if not np.array_equal(run.scores, reference.scores):
            raise RuntimeError("forced tiled backend changed scores")


class TestBatchKernelSchedules:
    """The compiler's batch schedules executed on the ISS: bit-identity
    with the reference kernels, and a traversal trace matching the
    tiled backend's :func:`plan_row_tiles` order exactly."""

    def test_containment_schedule_matches_reference(self):
        rng = np.random.default_rng(20)
        a = _packed(rng, 300, 777)
        b = _packed(rng, 1, 777)
        schedule = compile_batch_containment(300, a.shape[1], tile_rows=64)
        unit = BatchKernelUnit()
        scores = unit.run_containment(schedule, a, b)
        assert np.array_equal(scores, batch_containment(a, b))

    def test_trace_is_the_tiled_traversal_order(self):
        schedule = compile_batch_containment(300, 13, tile_rows=64)
        unit = BatchKernelUnit()
        unit.run_containment(
            schedule, np.zeros((300, 13), np.uint64),
            np.zeros((1, 13), np.uint64),
        )
        plan = plan_row_tiles(300, 64)
        assert schedule.tiles == tuple(plan)
        # two micro-ops per tile (andpop + pop), tile-major
        rows_walked = [(t[1], t[2]) for t in unit.trace[::2]]
        assert rows_walked == plan
        assert all(t[0] == "andpop" for t in unit.trace[::2])
        assert all(t[0] == "pop" for t in unit.trace[1::2])

    def test_per_tap_schedule_matches_fused_kernel(self):
        rng = np.random.default_rng(21)
        a = _packed(rng, 500, 505)
        b = _packed(rng, 1, 505)
        offsets = np.array([0, 3, 3, 7], dtype=np.intp)
        schedule = compile_batch_per_tap(
            500, a.shape[1], offsets, tile_rows=128
        )
        unit = BatchKernelUnit()
        hits = unit.run_per_tap(schedule, a, b)
        assert np.array_equal(hits, segment_popcount(a & b, offsets))
        # the zero-length segment emits no micro-ops and stays 0
        assert (hits[:, 1] == 0).all()
        assert not any(
            mo.col == 1 for mo in schedule.micro_ops
        )

    def test_per_row_canary_matrix(self):
        rng = np.random.default_rng(22)
        a = _packed(rng, 257, 64)
        b = _packed(rng, 257, 64)
        schedule = compile_batch_containment(257, a.shape[1], tile_rows=50)
        scores = BatchKernelUnit().run_containment(schedule, a, b)
        assert np.array_equal(scores, batch_containment(a, b))

    def test_default_tiling_matches_backend_cache_budget(self):
        schedule = compile_batch_containment(4096, 128)
        assert schedule.tile_rows == tile_rows_for(4096, 128 * 8)
        assert schedule.tiles == tuple(
            plan_row_tiles(4096, schedule.tile_rows)
        )

    def test_shape_mismatches_are_machine_errors(self):
        schedule = compile_batch_containment(10, 4, tile_rows=4)
        unit = BatchKernelUnit()
        with pytest.raises(MachineError, match="compiled for"):
            unit.execute(
                schedule, np.zeros((9, 4), np.uint64),
                np.zeros((1, 4), np.uint64),
            )
        with pytest.raises(MachineError, match="canary"):
            unit.execute(
                schedule, np.zeros((10, 4), np.uint64),
                np.zeros((3, 4), np.uint64),
            )

    def test_invalid_offsets_rejected_at_compile_time(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            compile_batch_per_tap(8, 4, np.array([2, 1], dtype=np.intp))
        with pytest.raises(ValueError):
            compile_batch_per_tap(8, 4, np.array([0, 9], dtype=np.intp))
