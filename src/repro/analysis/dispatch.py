"""Dispatch rules (RPR2xx): hot packed-word math must use the backend
registry.

PR 6 made the seven hot primitives pluggable through
``repro.core.backends``; the tiled/numba CI legs force a backend via
``REPRO_KERNEL_BACKEND`` and assert bit-identity.  A direct
``np.bitwise_count`` (or a direct import of the numpy reference
kernels) in a hot path silently computes on the reference backend no
matter what the matrix leg selected — the gate then measures nothing.
``repro/core/`` itself is exempt: it is where the reference kernels
and the sanctioned ``kernels=None -> reference`` dispatch live.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .base import Checker, FileContext, Finding, dotted_name, register

#: Path fragments of the hot serving/validation layers the rule guards.
HOT_PATHS = ("repro/runtime/", "repro/isa/", "repro/suite/")

#: Raw numpy entry points that bypass the backend registry when applied
#: to packed uint64 words.
_NUMPY_BYPASS = {
    "bitwise_count",
    "bitwise_and",
    "bitwise_or",
    "bitwise_xor",
    "packbits",
    "unpackbits",
}

#: The batch primitives the backend registry owns; importing them
#: straight from the reference module pins the numpy implementation.
_HOT_PRIMITIVES = {
    "batch_or",
    "batch_popcount",
    "batch_and_popcount",
    "batch_containment",
    "batch_jaccard",
    "segment_popcount",
    "popcount_words",
}


def _in_hot_path(path: str) -> bool:
    return any(frag in path for frag in HOT_PATHS)


@register
class BackendBypassChecker(Checker):
    """RPR201: no raw numpy popcount/bitwise calls in hot paths."""

    code = "RPR201"
    name = "backend-bypass"
    summary = (
        "hot paths must route packed-word math through "
        "repro.core.backends, not raw numpy bitwise/popcount calls"
    )
    paths_note = "repro/{runtime,isa,suite}/"

    def applies(self, path: str) -> bool:
        return _in_hot_path(path)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if "." not in name:
                continue
            head, _, leaf = name.rpartition(".")
            if leaf in _NUMPY_BYPASS and head in ("np", "numpy"):
                yield self.finding(
                    ctx,
                    node,
                    f"direct {name}() bypasses the kernel backend "
                    "registry; take a KernelBackend (kernels=...) and "
                    "call its batch primitive so forced-backend CI "
                    "legs exercise this path",
                )


@register
class ReferenceImportChecker(Checker):
    """RPR202: no direct reference-kernel imports in hot paths."""

    code = "RPR202"
    name = "reference-import"
    summary = (
        "hot paths must not import the batch primitives straight from "
        "repro.core.bitmask; resolve them via repro.core.backends"
    )
    paths_note = "repro/{runtime,isa,suite}/"

    def applies(self, path: str) -> bool:
        return _in_hot_path(path)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if not module.endswith("core.bitmask"):
                    continue
                hot = [
                    alias.name for alias in node.names
                    if alias.name in _HOT_PRIMITIVES
                ]
                if hot:
                    yield self.finding(
                        ctx,
                        node,
                        f"imports {', '.join(hot)} straight from the "
                        "numpy reference module; use "
                        "repro.core.backends.get_backend() so the "
                        "backend stays selectable",
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                head, _, leaf = name.rpartition(".")
                if leaf in _HOT_PRIMITIVES and head.endswith("bitmask"):
                    yield self.finding(
                        ctx,
                        node,
                        f"direct {name}() call pins the numpy "
                        "reference kernel; resolve a backend via "
                        "repro.core.backends instead",
                    )
