"""repro.suite — the unified scenario suite.

One driver (``repro suite``) runs any {attack x defense x corruption x
workload x backend} grid through the same engine-backed scoring path
and normalizes every result into one versioned ScenarioReport schema
that CI can validate, diff, and gate.
"""

from repro.suite.adapters import (
    ATTACKS,
    DEFENSES,
    AttackAdapter,
    DefenseAdapter,
    FittedDefense,
)
from repro.suite.grid import (
    AXES,
    DEFAULT_AXES,
    SMOKE_AXES,
    ScenarioSpec,
    SkippedScenario,
    expand_grid,
    parse_grid,
)
from repro.suite.runner import SuiteConfig, SuiteRunner
from repro.suite.schema import (
    SCHEMA_VERSION,
    config_fingerprint,
    environment_info,
    example_report,
    scores_digest,
    validate_report,
)
from repro.suite.sweep import sweep_thresholds, threshold_at_fpr
from repro.suite.writer import render_summary, report_filename, write_reports

__all__ = [
    "ATTACKS",
    "AXES",
    "DEFAULT_AXES",
    "DEFENSES",
    "AttackAdapter",
    "DefenseAdapter",
    "FittedDefense",
    "SCHEMA_VERSION",
    "SMOKE_AXES",
    "ScenarioSpec",
    "SkippedScenario",
    "SuiteConfig",
    "SuiteRunner",
    "config_fingerprint",
    "environment_info",
    "example_report",
    "expand_grid",
    "parse_grid",
    "render_summary",
    "report_filename",
    "scores_digest",
    "sweep_thresholds",
    "threshold_at_fpr",
    "validate_report",
    "write_reports",
]
