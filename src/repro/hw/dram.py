"""Transaction-level LPDDR3 DRAM model (Sec. VI-A).

The paper models off-chip memory as four Micron 16 Gb LPDDR3-1600
channels.  The top-level simulator uses a flat-bandwidth abstraction
(``HardwareConfig.dram_bytes_per_cycle``), which is accurate for the
long sequential streams DNN inference generates.  This module provides
the transaction-level refinement used by the DRAM ablation benchmark:
per-channel banks with open-row policy, activate/precharge penalties,
and burst accounting — enough structure to show *when* the flat model
is valid (streaming weights/feature maps: >95% row hits) and when it is
not (scattered partial-sum reads during backward extraction).

All timing parameters are expressed in accelerator cycles at 250 MHz.
LPDDR3-1600 runs its command clock at 800 MHz (3.2 accelerator-to-DRAM
clock ratio); the defaults below are the datasheet values converted and
rounded up, which is conservative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence, Tuple

__all__ = [
    "DramTimings",
    "DramConfig",
    "DramStats",
    "Bank",
    "Channel",
    "DramModel",
    "DoubleBufferPlan",
    "double_buffer_cycles",
    "stream_cycles",
]


@dataclass(frozen=True)
class DramTimings:
    """Core timing parameters, in accelerator cycles (250 MHz).

    LPDDR3-1600 datasheet values are ~18 ns for tRCD/tRP/RL, i.e. about
    4.5 accelerator cycles; burst of 8 at 1600 MT/s on a x32 channel
    moves 32 bytes in 5 ns (~1.25 accelerator cycles).
    """

    t_rcd: int = 5        # ACTIVATE -> first column command
    t_rp: int = 5         # PRECHARGE -> next ACTIVATE
    t_cl: int = 5         # column command -> first data beat
    t_burst: int = 2      # one BL8 data burst on the bus
    t_refresh_penalty: float = 0.05  # fractional bandwidth lost to refresh

    def row_miss_penalty(self) -> int:
        """Extra cycles for a closed-row access (ACT + column latency)."""
        return self.t_rcd + self.t_cl

    def row_conflict_penalty(self) -> int:
        """Extra cycles when another row is open (PRE + ACT + column)."""
        return self.t_rp + self.t_rcd + self.t_cl


@dataclass(frozen=True)
class DramConfig:
    """Geometry of the four-channel LPDDR3 subsystem."""

    channels: int = 4
    banks_per_channel: int = 8
    row_bytes: int = 2048         # 2 KB page, x32 LPDDR3
    burst_bytes: int = 32         # BL8 on a 32-bit channel
    timings: DramTimings = field(default_factory=DramTimings)

    def __post_init__(self):
        if self.channels < 1 or self.banks_per_channel < 1:
            raise ValueError("need at least one channel and one bank")
        if self.row_bytes % self.burst_bytes:
            raise ValueError("row size must be a multiple of the burst size")

    @property
    def bursts_per_row(self) -> int:
        return self.row_bytes // self.burst_bytes

    def with_channels(self, channels: int) -> "DramConfig":
        return replace(self, channels=channels)


@dataclass
class DramStats:
    """Aggregate transaction statistics for one simulated access stream."""

    read_bursts: int = 0
    write_bursts: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    busy_cycles: int = 0

    @property
    def bursts(self) -> int:
        return self.read_bursts + self.write_bursts

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses + self.row_conflicts
        return self.row_hits / total if total else 0.0

    def merge(self, other: "DramStats") -> "DramStats":
        return DramStats(
            self.read_bursts + other.read_bursts,
            self.write_bursts + other.write_bursts,
            self.row_hits + other.row_hits,
            self.row_misses + other.row_misses,
            self.row_conflicts + other.row_conflicts,
            max(self.busy_cycles, other.busy_cycles),
        )


class Bank:
    """One DRAM bank with an open-row (page-open) policy."""

    __slots__ = ("open_row",)

    def __init__(self):
        self.open_row: int | None = None

    def access(self, row: int, timings: DramTimings) -> Tuple[str, int]:
        """Access one burst in ``row``; returns (outcome, extra_cycles).

        Outcome is ``hit``/``miss``/``conflict``; extra cycles exclude
        the burst transfer itself.
        """
        if self.open_row == row:
            return "hit", 0
        if self.open_row is None:
            self.open_row = row
            return "miss", timings.row_miss_penalty()
        self.open_row = row
        return "conflict", timings.row_conflict_penalty()


class Channel:
    """One LPDDR3 channel: a set of banks sharing a data bus."""

    def __init__(self, config: DramConfig):
        self.config = config
        self.banks = [Bank() for _ in range(config.banks_per_channel)]
        self.stats = DramStats()

    def access_burst(self, addr: int, is_write: bool) -> None:
        """Issue one burst-granular access at channel-local ``addr``."""
        cfg = self.config
        burst_index = addr // cfg.burst_bytes
        row_global = burst_index // cfg.bursts_per_row
        bank_index = row_global % cfg.banks_per_channel
        row = row_global // cfg.banks_per_channel
        outcome, extra = self.banks[bank_index].access(row, cfg.timings)
        if outcome == "hit":
            self.stats.row_hits += 1
        elif outcome == "miss":
            self.stats.row_misses += 1
        else:
            self.stats.row_conflicts += 1
        if is_write:
            self.stats.write_bursts += 1
        else:
            self.stats.read_bursts += 1
        self.stats.busy_cycles += cfg.timings.t_burst + extra


class DramModel:
    """The full multi-channel subsystem.

    Addresses interleave across channels at burst granularity, the
    standard layout for bandwidth-bound accelerators: consecutive
    bursts land on different channels so sequential streams use all
    four data buses.
    """

    def __init__(self, config: DramConfig | None = None):
        self.config = config or DramConfig()
        self.channels = [Channel(self.config) for _ in range(self.config.channels)]

    # -- address mapping -------------------------------------------------
    def _route(self, addr: int) -> Tuple[Channel, int]:
        cfg = self.config
        burst_index = addr // cfg.burst_bytes
        channel = self.channels[burst_index % cfg.channels]
        local_burst = burst_index // cfg.channels
        return channel, local_burst * cfg.burst_bytes

    # -- access API ---------------------------------------------------------
    def access(self, addr: int, nbytes: int, is_write: bool = False) -> None:
        """Stream ``nbytes`` starting at ``addr`` through the subsystem."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        cfg = self.config
        if nbytes == 0:
            return
        first = addr // cfg.burst_bytes
        last = (addr + nbytes - 1) // cfg.burst_bytes
        for burst in range(first, last + 1):
            channel, local_addr = self._route(burst * cfg.burst_bytes)
            channel.access_burst(local_addr, is_write)

    def access_scattered(
        self, addrs: Iterable[int], nbytes_each: int, is_write: bool = False
    ) -> None:
        """Non-contiguous accesses (e.g. important-neuron receptive-field
        reads during backward extraction)."""
        for addr in addrs:
            self.access(addr, nbytes_each, is_write)

    # -- reporting ----------------------------------------------------------
    def stats(self) -> DramStats:
        merged = DramStats()
        for channel in self.channels:
            merged = merged.merge(channel.stats)
        return merged

    def bytes_moved(self) -> int:
        return self.stats().bursts * self.config.burst_bytes

    def cycles(self) -> int:
        """Completion time: channels run in parallel, so the subsystem
        finishes when its busiest channel does, degraded by refresh."""
        busiest = max(channel.stats.busy_cycles for channel in self.channels)
        return math.ceil(busiest * (1.0 + self.config.timings.t_refresh_penalty))

    def effective_bytes_per_cycle(self) -> float:
        cycles = self.cycles()
        return self.bytes_moved() / cycles if cycles else 0.0

    def reset(self) -> None:
        self.channels = [Channel(self.config) for _ in range(self.config.channels)]


def stream_cycles(nbytes: int, config: DramConfig | None = None) -> int:
    """Cycles to move one sequential stream of ``nbytes`` (fresh model)."""
    model = DramModel(config)
    model.access(0, nbytes)
    return model.cycles()


@dataclass(frozen=True)
class DoubleBufferPlan:
    """Result of overlapping per-tile compute with per-tile DMA."""

    total_cycles: int
    compute_cycles: int
    transfer_cycles: int
    stall_cycles: int

    @property
    def overlap_efficiency(self) -> float:
        """1.0 = perfect overlap (total == max(compute, transfer))."""
        serial = self.compute_cycles + self.transfer_cycles
        ideal = max(self.compute_cycles, self.transfer_cycles)
        if serial == ideal:
            return 1.0
        return 1.0 - (self.total_cycles - ideal) / (serial - ideal)


def double_buffer_cycles(
    tile_compute: Sequence[int], tile_transfer: Sequence[int]
) -> DoubleBufferPlan:
    """Classic two-deep double-buffer pipeline (Sec. V-A).

    Tile ``i``'s compute overlaps tile ``i+1``'s DMA: the pipeline
    starts with tile 0's transfer (fill), then each step takes
    ``max(compute_i, transfer_{i+1})``, and ends with the last tile's
    compute (drain).
    """
    if len(tile_compute) != len(tile_transfer):
        raise ValueError("tile lists must have equal length")
    if not tile_compute:
        return DoubleBufferPlan(0, 0, 0, 0)
    total = tile_transfer[0]
    for i in range(len(tile_compute) - 1):
        total += max(tile_compute[i], tile_transfer[i + 1])
    total += tile_compute[-1]
    compute = sum(tile_compute)
    transfer = sum(tile_transfer)
    return DoubleBufferPlan(total, compute, transfer, total - compute)
