"""Shared smoke-mode policy for the benchmark suite.

Every benchmark entry point used to carry its own copy of the same
three decisions — when smoke mode is on, how small the traffic gets,
and how many workers may spawn.  This module is the single copy:
``conftest.py`` and the standalone ``main()`` entry points all route
through it, so CI time budgets are enforced in one place.

Smoke mode activates from either direction: an explicit ``--smoke``
flag, or the ``REPRO_SMOKE=1`` environment variable (which lets CI
turn any benchmark invocation into a smoke run without editing its
argument list).
"""

from __future__ import annotations

import os
from typing import Iterable, List

__all__ = [
    "SMOKE_ENV",
    "SMOKE_KERNEL_BITS",
    "SMOKE_KERNEL_ROWS",
    "SMOKE_SAMPLE_CAP",
    "SMOKE_WORKER_CAP",
    "activate_smoke",
    "cap_kernel_sizes",
    "cap_samples",
    "cap_worker_counts",
    "cap_workers",
    "smoke_requested",
]

#: Environment override: any truthy value turns smoke mode on.
SMOKE_ENV = "REPRO_SMOKE"
#: Largest traffic size a smoke benchmark streams.
SMOKE_SAMPLE_CAP = 96
#: Largest worker pool a smoke benchmark spawns.
SMOKE_WORKER_CAP = 2
#: Packed-kernel matrix caps for the micro-primitive sweep.
SMOKE_KERNEL_ROWS = 512
SMOKE_KERNEL_BITS = 64 * 64


def smoke_requested(flag: bool = False) -> bool:
    """True when smoke mode is active: ``flag`` (a parsed ``--smoke``
    option) or the ``REPRO_SMOKE`` environment override."""
    if flag:
        return True
    return os.environ.get(SMOKE_ENV, "").strip().lower() in (
        "1", "true", "yes", "on",
    )


def activate_smoke() -> None:
    """Shrink every named scenario to CI-smoke sizes (idempotent)."""
    from repro.eval import workloads

    workloads.shrink_for_smoke()


def cap_samples(count: int) -> int:
    """Traffic size under the smoke cap."""
    return min(count, SMOKE_SAMPLE_CAP)


def cap_workers(workers: int) -> int:
    """A single pool size under the smoke cap."""
    return min(workers, SMOKE_WORKER_CAP)


def cap_worker_counts(workers: Iterable[int]) -> List[int]:
    """A sweep of pool sizes under the smoke cap (deduplicated: a
    ``[1, 2, 4]`` sweep becomes ``[1, 2]``, not ``[1, 2, 2]``)."""
    return sorted({cap_workers(w) for w in workers})


def cap_kernel_sizes(rows: int, bits: int) -> tuple:
    """(rows, bits) for the packed-kernel sweep under the smoke caps."""
    return min(rows, SMOKE_KERNEL_ROWS), min(bits, SMOKE_KERNEL_BITS)
