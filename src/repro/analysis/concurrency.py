"""Concurrency rules (RPR1xx): shm lifecycle and lock discipline.

These are the invariants PR 5's zero-copy transport depends on: a
leaked ``/dev/shm`` segment outlives the process and a slab slot that
is acquired but never released starves the ring.  The rules encode the
two sanctioned lifecycles from ``runtime/transport.py``:

* **try/finally** — a locally created segment is unlinked in a
  ``finally`` block (or the create itself sits behind one).
* **registered teardown** — the segment is stored on ``self`` inside a
  class that unlinks it from a teardown method (``destroy``/``close``),
  the pattern ``SlabRing`` uses.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from .base import (
    Checker,
    FileContext,
    Finding,
    contains_call,
    dotted_name,
    register,
)

_LOCK_FACTORIES = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
}


def _is_shm_create(node: ast.Call) -> bool:
    """``SharedMemory(create=True, ...)`` under any import alias."""
    name = dotted_name(node.func)
    if not name.split(".")[-1] == "SharedMemory":
        return False
    for kw in node.keywords:
        if kw.arg == "create" and isinstance(kw.value, ast.Constant) \
                and kw.value.value is True:
            return True
    return False


@register
class ShmUnlinkChecker(Checker):
    """RPR101: every created shm segment needs an unlink on all paths."""

    code = "RPR101"
    name = "shm-unlink"
    summary = (
        "SharedMemory(create=True) must be unlinked via try/finally or "
        "a class teardown method, or the segment leaks in /dev/shm"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not _is_shm_create(node):
                continue
            if self._compliant(ctx, node):
                continue
            yield self.finding(
                ctx,
                node,
                "SharedMemory(create=True) has no unlink() on the "
                "failure path; unlink in a finally block or store the "
                "segment on a class with a teardown method that "
                "unlinks it",
            )

    def _compliant(self, ctx: FileContext, node: ast.Call) -> bool:
        # Registered-teardown pattern: the enclosing class unlinks the
        # segment from some method (destroy()/close()); an except
        # handler covering a partial __init__ also counts because the
        # instance never escapes otherwise.
        cls = ctx.enclosing_class(node)
        if cls is not None and contains_call([cls], "unlink"):
            return True
        # try/finally pattern inside the enclosing function (or at
        # module scope): an unlink in a *finally* block guards every
        # exit, including the exception edge between create and the
        # straight-line unlink a naive probe would use.
        scope = ctx.enclosing_function(node) or ctx.tree
        for sub in ast.walk(scope):
            if isinstance(sub, ast.Try) and contains_call(
                sub.finalbody, "unlink"
            ):
                return True
        return False


@register
class SlabPairingChecker(Checker):
    """RPR102: slab-ring acquires must pair with release/reclaim."""

    code = "RPR102"
    name = "slab-pairing"
    summary = (
        "SlabRing.acquire() calls must pair with release() or the "
        "documented crash-reclaim/destroy path in the same module"
    )

    _RECLAIM_ATTRS = ("release", "destroy", "_destroy_shard_slabs")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        acquires: List[ast.Call] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr == "acquire"):
                continue
            receiver = dotted_name(func.value).lower()
            if "slab" in receiver or "ring" in receiver:
                acquires.append(node)
        if not acquires:
            return
        released = any(
            contains_call([ctx.tree], attr) for attr in self._RECLAIM_ATTRS
        )
        if released:
            return
        for node in acquires:
            yield self.finding(
                ctx,
                node,
                "slab slot acquired but this module never calls "
                "release()/destroy() or the crash-reclaim path; a "
                "leaked slot starves the ring",
            )


@register
class LockDisciplineChecker(Checker):
    """RPR103: threading locks held only via ``with`` or try/finally."""

    code = "RPR103"
    name = "lock-discipline"
    summary = (
        "threading.Lock/Condition acquired only via 'with' or "
        "try/finally release; a bare acquire() deadlocks on the "
        "exception edge"
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        lock_names = self._lock_names(ctx)
        if not lock_names:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr == "acquire"):
                continue
            receiver = dotted_name(func.value)
            if receiver not in lock_names:
                continue
            if self._guarded(ctx, node, receiver):
                continue
            yield self.finding(
                ctx,
                node,
                f"explicit {receiver}.acquire() without a matching "
                "release() in a finally block; use 'with "
                f"{receiver}:' instead",
            )

    @staticmethod
    def _lock_names(ctx: FileContext) -> set:
        """Names/attribute chains bound to a threading lock factory."""
        names = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            factory = dotted_name(node.value.func)
            if factory.split(".")[-1] not in _LOCK_FACTORIES:
                continue
            for target in node.targets:
                name = dotted_name(target)
                if name:
                    names.add(name)
        return names

    @classmethod
    def _guarded(cls, ctx: FileContext, node: ast.Call,
                 receiver: str) -> bool:
        """True when a finally block releases the same lock — either a
        Try ancestor of the acquire, or (the classic idiom) a Try that
        is the next statement after the acquire in the same body."""
        for anc in ctx.ancestors(node):
            if isinstance(anc, ast.Try) and cls._releases(
                anc.finalbody, receiver
            ):
                return True
        stmt = cls._enclosing_statement(ctx, node)
        if stmt is not None:
            parent = ctx.parent(stmt)
            for field in ("body", "orelse", "finalbody"):
                siblings = getattr(parent, field, None)
                if not isinstance(siblings, list) or stmt not in siblings:
                    continue
                idx = siblings.index(stmt)
                if idx + 1 < len(siblings):
                    nxt = siblings[idx + 1]
                    if isinstance(nxt, ast.Try) and cls._releases(
                        nxt.finalbody, receiver
                    ):
                        return True
        return False

    @staticmethod
    def _releases(body, receiver: str) -> bool:
        for root in body:
            for sub in ast.walk(root):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "release"
                        and dotted_name(sub.func.value) == receiver):
                    return True
        return False

    @staticmethod
    def _enclosing_statement(ctx: FileContext, node: ast.AST):
        """The statement node whose parent holds it in a body list."""
        cur = node
        while cur is not None and not isinstance(cur, ast.stmt):
            cur = ctx.parent(cur)
        return cur


@register
class WorkerGlobalChecker(Checker):
    """RPR104: worker entry points must not write module globals."""

    code = "RPR104"
    name = "worker-global"
    summary = (
        "no 'global' writes from worker/_loop entry points; "
        "module-level mutable state is per-process and silently "
        "diverges across shard workers"
    )

    @staticmethod
    def _is_worker_name(name: str) -> bool:
        lowered = name.lower()
        return "worker" in lowered or lowered.endswith("_loop")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Global):
                continue
            func = ctx.enclosing_function(node)
            if func is None or not self._is_worker_name(func.name):
                continue
            yield self.finding(
                ctx,
                node,
                f"worker entry point {func.name}() declares global "
                f"{', '.join(node.names)}; pass state through the "
                "queue/slab descriptors instead of module globals",
            )
