"""Fig. 17 — late-start in forward extraction (FwAb).

Paper result: starting extraction earlier (more layers) increases
accuracy, like early-termination; but because forward extraction is
hidden behind inference, starting later does NOT reduce latency — it
only reduces energy (by ~8.4% for the latest start).
"""

from repro.eval import Workbench, render_table


def test_fig17_late_start(benchmark):
    wb = Workbench.get("alexnet_imagenet")
    num_layers = wb.model.num_extraction_units()
    start_layers = (num_layers, num_layers - 2, num_layers - 4, 1)

    def run():
        rows = []
        for start in start_layers:
            auc = wb.mean_auc("FwAb", attacks=("bim", "fgsm"),
                              first_layer=start)["mean"]
            cost = wb.variant_cost("FwAb", first_layer=start)
            rows.append((start, num_layers - start + 1, auc,
                         cost.latency_overhead, cost.energy_overhead))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        "Fig 17: FwAb late-start (paper: latency flat ~1.02x regardless "
        "of start; energy drops up to 8.4% with later starts)",
        ["start layer", "layers extracted", "AUC", "latency x", "energy x"],
        rows,
    ))
    lat = [r[3] for r in rows]
    energy = [r[4] for r in rows]
    # latency stays essentially flat: extraction is hidden (Fig. 7a)
    assert max(lat) - min(lat) < 0.15
    assert max(lat) < 1.15
    # starting later (fewer layers) uses no more energy
    assert energy[0] <= energy[-1] + 1e-9
