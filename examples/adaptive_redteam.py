#!/usr/bin/env python
"""Red-team exercise: adaptive attacks against Ptolemy (Sec. VII-E).

Plays the attacker who knows everything about the defense: generates
activation-matching adaptive samples (AT1..ATn), reports their
distortion and success rate (the Carlini et al. validation protocol),
and shows how detection accuracy degrades — but survives — as the
attack constrains more layers.

Run: python examples/adaptive_redteam.py
"""

import numpy as np

from repro.attacks import AdaptiveAttack, BIM
from repro.core import ExtractionConfig, PtolemyDetector
from repro.data import make_imagenet_like
from repro.eval import render_table
from repro.nn import TrainConfig, build_mini_alexnet, train_classifier


def main():
    dataset = make_imagenet_like(num_classes=6, train_per_class=40,
                                 test_per_class=25, seed=9)
    model = build_mini_alexnet(num_classes=6, seed=9)
    print("training the victim...")
    train_classifier(model, dataset.x_train, dataset.y_train,
                     TrainConfig(epochs=8, seed=9))
    num_layers = model.num_extraction_units()

    # the defense: BwCu, the paper's most accurate variant
    detector = PtolemyDetector(
        model, ExtractionConfig.bwcu(num_layers, theta=0.5),
        n_trees=60, seed=9,
    )
    print("deploying the defense (profiling + classifier)...")
    detector.profile(dataset.x_train, dataset.y_train, max_per_class=25)
    adv_fit = BIM(eps=0.08).generate(model, dataset.x_train[:40],
                                     dataset.y_train[:40]).x_adv
    detector.fit_classifier(dataset.x_train[40:80], adv_fit)

    benign = dataset.x_test[12:24]
    xs, ys = dataset.x_test[:12], dataset.y_test[:12]

    # baseline: a non-adaptive attack
    bim_eval = BIM(eps=0.08).generate(model, xs, ys)
    bim_auc = detector.evaluate_auc(benign, bim_eval.x_adv)

    rows = [("BIM (non-adaptive)", 1.0, float("nan"), bim_auc)]
    for layers in (1, 3, num_layers):
        print(f"red team: building AT{layers} adaptive samples...")
        attack = AdaptiveAttack(
            dataset.x_train, dataset.y_train,
            layers_considered=layers, steps=35, seed=layers,
        )
        result = attack.generate(model, xs, ys)
        mse = float(np.mean([s.distortion_mse for s in attack.last_samples]))
        auc = detector.evaluate_auc(benign, result.x_adv)
        rows.append((f"AT{layers} (adaptive)", result.success_rate, mse, auc))

    print()
    print(render_table(
        "adaptive red team vs Ptolemy BwCu (paper: detection degrades "
        "with n but survives; avg adaptive MSE 0.007)",
        ["attack", "success rate", "mean MSE", "detection AUC"],
        rows, float_fmt="{:.3f}",
    ))
    at_full = rows[-1][3]
    print(f"\nEven the strongest adaptive attack (all {num_layers} layers "
          f"constrained) is detected with AUC {at_full:.3f} — the "
          f"differentiable relaxation cannot force the discrete activation "
          f"path to match the canary (Sec. VII-E's discussion).")


if __name__ == "__main__":
    main()
