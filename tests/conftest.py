"""Shared fixtures: small trained models and datasets, built once per
session (training is deterministic, so every test sees identical state)."""

from __future__ import annotations

import sys
from pathlib import Path

# Make the in-repo package importable from any working directory —
# pytest (and CI) must not depend on the invoker exporting PYTHONPATH.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np
import pytest

from repro.data import make_imagenet_like
from repro.nn import (
    TrainConfig,
    build_mini_alexnet,
    build_mlp,
    train_classifier,
)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_dataset():
    """5-class synthetic dataset, ImageNet-like regime."""
    return make_imagenet_like(
        num_classes=5, train_per_class=30, test_per_class=10, seed=7
    )


@pytest.fixture(scope="session")
def trained_alexnet(small_dataset):
    """MiniAlexNet trained to (near-)perfect accuracy on the dataset."""
    model = build_mini_alexnet(num_classes=5, seed=3)
    train_classifier(
        model,
        small_dataset.x_train,
        small_dataset.y_train,
        TrainConfig(epochs=8, seed=3),
    )
    return model


def build_serving_model():
    """Worker-side model factory matching :func:`trained_alexnet` —
    module-level so the sharded service's workers can pickle it."""
    return build_mini_alexnet(num_classes=5, seed=3)


@pytest.fixture(scope="session")
def serving_detector(small_dataset, trained_alexnet):
    """A fitted FwAb detector (the serving variant), shared by the
    runtime server/adaptive test modules so each does not re-profile."""
    from repro.attacks import FGSM
    from repro.core import ExtractionConfig, PtolemyDetector, calibrate_phi

    model = trained_alexnet
    config = calibrate_phi(
        model,
        ExtractionConfig.fwab(model.num_extraction_units()),
        small_dataset.x_train[:4],
        quantile=0.95,
    )
    detector = PtolemyDetector(model, config, n_trees=20, seed=0)
    detector.profile(
        small_dataset.x_train, small_dataset.y_train, max_per_class=8
    )
    adv = FGSM(eps=0.1).generate(
        model, small_dataset.x_train[:20], small_dataset.y_train[:20]
    ).x_adv
    detector.fit_classifier(small_dataset.x_train[20:40], adv)
    return detector


@pytest.fixture(scope="session")
def flat_dataset(small_dataset):
    """The same dataset flattened for MLP consumption."""
    return (
        small_dataset.x_train.reshape(len(small_dataset.x_train), -1),
        small_dataset.y_train,
        small_dataset.x_test.reshape(len(small_dataset.x_test), -1),
        small_dataset.y_test,
    )


@pytest.fixture(scope="session")
def trained_mlp(flat_dataset):
    """Bias-free MLP (bias-free so ISS theta targets are exact)."""
    x_train, y_train, _, _ = flat_dataset
    model = build_mlp(
        in_features=x_train.shape[1], hidden=(24, 16), num_classes=5, seed=5
    )
    for node in model.extraction_units():
        node.module.bias = None
    train_classifier(model, x_train, y_train, TrainConfig(epochs=12, seed=5))
    return model


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar f at x (test helper)."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        up = f(x)
        flat[i] = old - eps
        down = f(x)
        flat[i] = old
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


@pytest.fixture(scope="session")
def numgrad():
    return numerical_gradient
