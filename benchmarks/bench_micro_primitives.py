"""Micro-benchmarks of the detection primitives (real timed runs):
per-input path extraction for each variant, bitmask algebra on
class-path-sized vectors, and compiled-program execution on the ISS.

These are the operations the hardware accelerates; their software
timings motivate the co-design (Sec. III-B's 15.4x software overhead).
"""

import numpy as np

from repro.compiler import MemoryMap, compile_bwcu
from repro.core import Bitmask, ExtractionConfig, PathExtractor
from repro.eval import Workbench
from repro.isa import Machine, ModelAdapter


def test_micro_extract_bwcu(benchmark):
    wb = Workbench.get("alexnet_imagenet")
    extractor = PathExtractor(wb.model, wb.config_for("BwCu"))
    x = wb.dataset.x_test[:1]
    result = benchmark(lambda: extractor.extract(x))
    assert result.path.popcount() > 0


def test_micro_extract_fwab(benchmark):
    wb = Workbench.get("alexnet_imagenet")
    extractor = PathExtractor(wb.model, wb.config_for("FwAb"))
    x = wb.dataset.x_test[:1]
    result = benchmark(lambda: extractor.extract(x))
    assert result.predicted_class in range(wb.dataset.num_classes)


def test_micro_bitmask_similarity(benchmark):
    rng = np.random.default_rng(0)
    size = 1 << 16
    a = Bitmask.from_bool(rng.random(size) < 0.05)
    b = Bitmask.from_bool(rng.random(size) < 0.3)
    count = benchmark(lambda: a.intersection_count(b))
    assert 0 <= count <= a.popcount()


def test_micro_iss_bwcu_program(benchmark, trained_mlp=None):
    from repro.data import make_imagenet_like
    from repro.nn import TrainConfig, build_mlp, train_classifier

    ds = make_imagenet_like(num_classes=4, train_per_class=15,
                            test_per_class=4, seed=11)
    x_train = ds.x_train.reshape(len(ds.x_train), -1)
    model = build_mlp(in_features=x_train.shape[1], hidden=(20, 12),
                      num_classes=4, seed=2)
    for node in model.extraction_units():
        node.module.bias = None
    train_classifier(model, x_train, ds.y_train, TrainConfig(epochs=6, seed=2))
    config = ExtractionConfig.bwcu(3, theta=0.5)
    model.forward(x_train[:1])
    mem_map = MemoryMap(model, config)
    program = compile_bwcu(model, config, mem_map)
    x = ds.x_test[:1].reshape(1, -1)

    def run():
        machine = Machine(1 << 16, adapter=ModelAdapter(model, mem_map, x))
        machine.run(program)
        return machine

    machine = benchmark(run)
    assert machine.stats.total > 0
