"""Transient hardware-fault injection (Sec. VIII).

The paper expects Ptolemy "could also be used for detecting the
execution errors of DNN accelerators caused by transient hardware
errors" — an accelerator bit flip perturbs activations, which perturbs
the activation path the same way an adversarial input does.  This
module injects such faults so that claim can be evaluated.

Faults are injected into the *output feature map* of a chosen layer,
modelling an error that strikes after psum accumulation (so the layer's
own partial sums reflect pre-fault values, but every downstream layer —
and the path — sees the corruption).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.nn.graph import Graph, INPUT

__all__ = ["FaultSpec", "forward_with_fault", "bitflip_fault", "stuck_fault"]


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: which node, which elements, what corruption."""

    node: str
    fraction: float = 0.01       # fraction of elements corrupted
    magnitude: float = 4.0       # corruption scale (x activation std)
    seed: int = 0


def bitflip_fault(spec: FaultSpec) -> Callable[[np.ndarray], np.ndarray]:
    """High-order-bit-flip-style corruption: selected elements jump by
    +-magnitude standard deviations (a 16-bit MSB flip makes a large,
    sign-preserving-or-not jump; this models its effect on values)."""
    rng = np.random.default_rng(spec.seed)

    def corrupt(activation: np.ndarray) -> np.ndarray:
        out = activation.copy()
        flat = out.reshape(-1)
        count = max(1, int(spec.fraction * flat.size))
        picks = rng.choice(flat.size, size=count, replace=False)
        scale = float(activation.std()) + 1e-12
        flat[picks] += rng.choice([-1.0, 1.0], size=count) * spec.magnitude * scale
        return out

    return corrupt


def stuck_fault(spec: FaultSpec) -> Callable[[np.ndarray], np.ndarray]:
    """Stuck-at-zero corruption: selected elements read as zero."""
    rng = np.random.default_rng(spec.seed)

    def corrupt(activation: np.ndarray) -> np.ndarray:
        out = activation.copy()
        flat = out.reshape(-1)
        count = max(1, int(spec.fraction * flat.size))
        picks = rng.choice(flat.size, size=count, replace=False)
        flat[picks] = 0.0
        return out

    return corrupt


def forward_with_fault(
    model: Graph,
    x: np.ndarray,
    spec: FaultSpec,
    corrupt: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> np.ndarray:
    """Run inference with a fault injected at ``spec.node``'s output.

    Replays the graph's forward loop, corrupting the chosen node's
    activation before downstream layers consume it.  All layer caches
    and ``model.activations`` reflect the faulty run, so a subsequent
    path extraction sees exactly what the faulty accelerator produced.
    """
    if spec.node not in {n.name for n in model.nodes}:
        raise ValueError(f"unknown node {spec.node!r}")
    corrupt = corrupt or bitflip_fault(spec)
    acts: Dict[str, np.ndarray] = {INPUT: x}
    for node in model.nodes:
        if node.is_multi_input:
            out = node.module.forward_multi([acts[i] for i in node.inputs])
        else:
            out = node.module.forward(acts[node.inputs[0]])
        if node.name == spec.node:
            out = corrupt(out)
        acts[node.name] = out
    model.activations = acts
    return acts[model.output_name]
