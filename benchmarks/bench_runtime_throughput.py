"""Runtime engine throughput — samples/sec vs micro-batch size.

The batched detection engine exists so the online detector keeps up
with inference-rate traffic; this benchmark is its contract.  The same
fitted FwAb detector (the low-latency serving variant) drives a fixed
mixed benign/adversarial traffic stream through
:class:`repro.runtime.DetectionEngine` at micro-batch sizes
{1, 8, 64, 256} and reports samples/sec, per-batch latency, and the
per-stage time split.

Two properties are asserted: batching must never change decisions
(bit-identical scores across batch sizes), and batch 64 must be at
least 5x faster than batch 1 — the speedup the packed-word kernels
were built for.  ``scripts/perf_gate.py`` reuses
:func:`measure_throughput` to compare CI runs against the committed
baseline.
"""

import numpy as np

from repro.eval import Workbench, render_table
from repro.runtime import measure_throughput as _measure_engine

BATCH_SIZES = (1, 8, 64, 256)
DEFAULT_SCENARIO = "alexnet_imagenet"
DEFAULT_VARIANT = "FwAb"


def measure_throughput(
    workbench,
    batch_sizes=BATCH_SIZES,
    count=256,
    variant=DEFAULT_VARIANT,
    repeats=2,
):
    """Scenario wrapper over :func:`repro.runtime.measure_throughput`
    (the shared warm-up + best-of-``repeats`` harness, so the CLI, this
    benchmark, and the CI perf gate all measure the same way).  Returns
    ``{batch_size: report_dict}`` with the first pass's scores attached
    for cross-batch-size equivalence checks.
    """
    detector = workbench.detector(variant)
    traffic = workbench.traffic(count=count)
    return _measure_engine(
        detector, traffic, batch_sizes=batch_sizes, repeats=repeats
    )


def test_runtime_throughput(benchmark, smoke):
    workbench = Workbench.get(DEFAULT_SCENARIO)
    count = 64 if smoke else 256

    results = benchmark.pedantic(
        lambda: measure_throughput(workbench, count=count),
        rounds=1, iterations=1,
    )

    rows = []
    for batch_size, report in results.items():
        rows.append((
            batch_size,
            f"{report['samples_per_sec']:.0f}",
            f"{report['mean_batch_latency_ms']:.2f}",
            f"{report['stage_extract_seconds'] * 1e3:.1f}",
            f"{report['stage_classify_seconds'] * 1e3:.1f}",
        ))
    print()
    print(render_table(
        f"engine throughput: {DEFAULT_VARIANT} on {DEFAULT_SCENARIO} "
        f"({count} mixed-traffic samples)",
        ["batch", "samples/s", "mean ms/batch", "extract ms", "classify ms"],
        rows,
    ))
    speedup = (
        results[64]["samples_per_sec"] / results[1]["samples_per_sec"]
    )
    print(f"batch-64 speedup over batch-1: {speedup:.1f}x (gate: >= 5x)")

    # Batching is a throughput decision, never an accuracy one.  A
    # RuntimeError (not an assert) so smoke mode's relaxed-assertion
    # wrapper can never skip past an equivalence regression.
    reference = results[BATCH_SIZES[0]]["scores"]
    for batch_size in BATCH_SIZES[1:]:
        if not np.array_equal(results[batch_size]["scores"], reference):
            raise RuntimeError(
                f"batch {batch_size} changed detection scores"
            )
    if not all(r["samples_per_sec"] > 0 for r in results.values()):
        raise RuntimeError("throughput accounting produced zero rates")
    assert speedup >= 5.0
