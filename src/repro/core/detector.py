"""End-to-end Ptolemy detector (the online half of Fig. 4).

Pipeline: extract the activation path of an input, compare it to the
canary path of the *predicted* class, feed the similarity features to a
random forest, and flag the input as adversarial when the forest's
score exceeds the decision threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.classifier import RandomForest
from repro.core.config import ExtractionConfig
from repro.core.extraction import ExtractionResult, PathExtractor
from repro.core.metrics import roc_auc
from repro.core.path import path_similarity, per_tap_similarity
from repro.core.profiling import ClassPathSet, profile_class_paths
from repro.nn.graph import Graph

__all__ = ["DetectionOutcome", "PtolemyDetector"]


@dataclass
class DetectionOutcome:
    """Everything the detector derives from one input."""

    is_adversarial: bool
    score: float
    predicted_class: int
    similarity: float
    extraction: ExtractionResult


class PtolemyDetector:
    """Offline-profiled, online adversarial-input detector.

    Parameters
    ----------
    model:
        The protected network.
    config:
        Extraction recipe (direction / thresholding / selective knobs).
    feature_mode:
        ``"scalar"`` feeds only the paper's similarity ``S`` to the
        classifier; ``"per_layer"`` (default) additionally feeds the
        per-tap similarity vector, which is strictly richer and equally
        cheap to compute in hardware (one popcount per tap).
    """

    def __init__(
        self,
        model: Graph,
        config: ExtractionConfig,
        feature_mode: str = "per_layer",
        n_trees: int = 100,
        max_depth: int = 12,
        seed: int = 0,
    ):
        if feature_mode not in ("scalar", "per_layer"):
            raise ValueError("feature_mode must be 'scalar' or 'per_layer'")
        self.model = model
        self.config = config
        self.feature_mode = feature_mode
        self.extractor = PathExtractor(model, config)
        self.class_paths: Optional[ClassPathSet] = None
        self.forest = RandomForest(n_trees=n_trees, max_depth=max_depth, seed=seed)
        self._fitted = False
        self.last_trace = None

    # -- offline ----------------------------------------------------------
    def profile(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        max_per_class: Optional[int] = None,
    ) -> ClassPathSet:
        """Build the canary class paths from (correctly predicted)
        training samples."""
        self.class_paths = profile_class_paths(
            self.extractor, x_train, y_train, max_per_class
        )
        return self.class_paths

    def fit_classifier(
        self, x_benign: np.ndarray, x_adversarial: np.ndarray
    ) -> "PtolemyDetector":
        """Train the random forest on labelled benign/adversarial sets."""
        if self.class_paths is None:
            raise RuntimeError("call profile() before fit_classifier()")
        feats: List[np.ndarray] = []
        labels: List[int] = []
        for x in x_benign:
            feats.append(self.features_for(x[None])[0])
            labels.append(0)
        for x in x_adversarial:
            feats.append(self.features_for(x[None])[0])
            labels.append(1)
        self.forest.fit(np.vstack(feats), np.asarray(labels))
        self._fitted = True
        return self

    # -- online ----------------------------------------------------
    def features_for(
        self, x: np.ndarray, reuse_forward: bool = False
    ) -> Tuple[np.ndarray, ExtractionResult]:
        """Similarity feature vector for one input (batch of one).

        ``reuse_forward=True`` extracts from the model's existing
        activation state instead of re-running inference — required
        when that state was produced specially (e.g. by fault
        injection, :func:`repro.eval.forward_with_fault`).
        """
        if self.class_paths is None:
            raise RuntimeError("detector has no class paths; call profile()")
        result = self.extractor.extract(x, reuse_forward=reuse_forward)
        self.last_trace = result.trace
        if result.predicted_class in self.class_paths:
            canary = self.class_paths.path_for(result.predicted_class)
            sim = path_similarity(result.path, canary)
            if self.feature_mode == "per_layer":
                per_tap = per_tap_similarity(result.path, canary)
                features = np.concatenate([[sim], per_tap])
            else:
                features = np.array([sim])
        else:
            # the predicted class was never (correctly) seen in profiling:
            # maximally suspicious
            width = 1 + (
                self.extractor.layout.num_taps
                if self.feature_mode == "per_layer"
                else 0
            )
            sim = 0.0
            features = np.zeros(width)
        return features, result

    def similarity(self, x: np.ndarray) -> float:
        """The paper's scalar similarity ``S`` for one input."""
        features, _ = self.features_for(x)
        return float(features[0])

    def score(self, x: np.ndarray) -> float:
        """Adversary probability from the random forest."""
        if not self._fitted:
            raise RuntimeError("classifier not fitted; call fit_classifier()")
        features, _ = self.features_for(x)
        return float(self.forest.predict_proba(features[None])[0])

    def detect(self, x: np.ndarray, threshold: float = 0.5,
               reuse_forward: bool = False) -> DetectionOutcome:
        """Full online detection of one input."""
        if not self._fitted:
            raise RuntimeError("classifier not fitted; call fit_classifier()")
        features, result = self.features_for(x, reuse_forward=reuse_forward)
        score = float(self.forest.predict_proba(features[None])[0])
        return DetectionOutcome(
            is_adversarial=score >= threshold,
            score=score,
            predicted_class=result.predicted_class,
            similarity=float(features[0]),
            extraction=result,
        )

    # -- evaluation --------------------------------------------------------
    def scores_for_set(self, xs: np.ndarray) -> np.ndarray:
        return np.array([self.score(x[None]) for x in xs])

    def evaluate_auc(
        self, x_benign: np.ndarray, x_adversarial: np.ndarray
    ) -> float:
        """AUC over an evenly-labelled benign/adversarial test set."""
        scores = np.concatenate(
            [self.scores_for_set(x_benign), self.scores_for_set(x_adversarial)]
        )
        labels = np.concatenate(
            [np.zeros(len(x_benign)), np.ones(len(x_adversarial))]
        )
        return roc_auc(labels, scores)
