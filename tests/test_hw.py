"""Hardware-model tests: inference cost, path constructor, DRAM
footprint, full detection simulation, and the area model."""

import math

import pytest

from repro.compiler import apply_optimizations
from repro.core import ExtractionConfig, PathExtractor, calibrate_phi
from repro.hw import (
    DEFAULT_HW,
    HardwareConfig,
    area_report,
    controller_cost,
    detection_dram_footprint,
    inference_cost,
    model_workload,
    recompute_cycles,
    simulate_detection,
)
from repro.hw.path_constructor import sort_cycles, sort_energy_pj


@pytest.fixture(scope="module")
def alexnet_env(trained_alexnet, small_dataset):
    trained_alexnet.forward(small_dataset.x_test[:1])
    workload = model_workload(trained_alexnet)
    return trained_alexnet, workload, small_dataset


def _trace_for(model, config, x):
    return PathExtractor(model, config).extract(x).trace


class TestInferenceCost:
    def test_macs_bound_compute_cycles(self, alexnet_env):
        _, workload, _ = alexnet_env
        cost = inference_cost(workload, DEFAULT_HW)
        min_cycles = math.ceil(workload.total_macs / DEFAULT_HW.macs_per_cycle)
        assert cost.cycles >= min_cycles

    def test_bigger_array_is_faster(self, alexnet_env):
        _, workload, _ = alexnet_env
        small = inference_cost(workload, DEFAULT_HW)
        big = inference_cost(workload, DEFAULT_HW.with_array(32, 32))
        assert big.cycles <= small.cycles

    def test_energy_positive_per_layer(self, alexnet_env):
        _, workload, _ = alexnet_env
        cost = inference_cost(workload, DEFAULT_HW)
        assert all(l.energy_pj > 0 for l in cost.layers)

    def test_recompute_uses_first_row_only(self):
        cycles = recompute_cycles(10, 100, DEFAULT_HW)
        assert cycles == 10 * math.ceil(100 / DEFAULT_HW.array_cols)
        assert recompute_cycles(0, 100, DEFAULT_HW) == 0


class TestPathConstructor:
    def test_sort_cycles_grow_with_length(self):
        assert sort_cycles(1024, DEFAULT_HW) > sort_cycles(64, DEFAULT_HW)

    def test_longer_merge_tree_reduces_latency(self):
        """Fig. 18a: longer merge trees cut sort latency."""
        short = DEFAULT_HW.with_merge_length(4)
        long = DEFAULT_HW.with_merge_length(32)
        n = 20000
        assert sort_cycles(n, long) < sort_cycles(n, short)

    def test_more_sort_units_marginal(self):
        """Fig. 18b: extra sort units barely matter (merge-bound)."""
        few = DEFAULT_HW.with_sort_units(2)
        many = DEFAULT_HW.with_sort_units(16)
        n = 20000
        saving = sort_cycles(n, few) - sort_cycles(n, many)
        assert 0 <= saving < 0.2 * sort_cycles(n, few)

    def test_tiny_sequences(self):
        assert sort_cycles(0, DEFAULT_HW) == 0
        assert sort_cycles(1, DEFAULT_HW) == 1
        assert sort_energy_pj(1, DEFAULT_HW) == 0.0


class TestDramFootprint:
    def test_store_all_regime_scales_with_psums(self, alexnet_env):
        model, workload, ds = alexnet_env
        config = ExtractionConfig.bwcu(8, theta=0.5)
        trace = _trace_for(model, config, ds.x_test[:1])
        fp = detection_dram_footprint(workload, config, trace, DEFAULT_HW,
                                      recompute=False)
        assert fp.space_bytes == workload.total_psums * 2
        assert fp.write_bytes == workload.total_psums * 2

    def test_recompute_shrinks_space(self, alexnet_env):
        model, workload, ds = alexnet_env
        config = ExtractionConfig.bwcu(8, theta=0.5)
        trace = _trace_for(model, config, ds.x_test[:1])
        stored = detection_dram_footprint(workload, config, trace, DEFAULT_HW,
                                          recompute=False)
        recomputed = detection_dram_footprint(workload, config, trace,
                                              DEFAULT_HW, recompute=True)
        assert recomputed.space_bytes < stored.space_bytes
        assert recomputed.write_bytes == 0

    def test_absolute_mode_stores_bits(self, alexnet_env):
        model, workload, ds = alexnet_env
        config = calibrate_phi(model, ExtractionConfig.bwab(8),
                               ds.x_train[:4])
        trace = _trace_for(model, config, ds.x_test[:1])
        fp = detection_dram_footprint(workload, config, trace, DEFAULT_HW,
                                      recompute=False)
        # masks are 1 bit per psum: 16x smaller than storing psums
        assert fp.space_bytes <= workload.total_psums / 8 + len(config.layers)


class TestDetectionSimulation:
    def _cost(self, model, ds, workload, variant, **opt):
        n = model.num_extraction_units()
        if variant == "BwCu":
            config = ExtractionConfig.bwcu(n, theta=0.5)
        elif variant == "BwAb":
            config = calibrate_phi(model, ExtractionConfig.bwab(n),
                                   ds.x_train[:4])
        elif variant == "FwAb":
            config = calibrate_phi(model, ExtractionConfig.fwab(n),
                                   ds.x_train[:4], quantile=0.95)
        else:
            config = calibrate_phi(model, ExtractionConfig.hybrid(n, 0.5),
                                   ds.x_train[:4])
        trace = _trace_for(model, config, ds.x_test[:1])
        schedule = apply_optimizations(config, n, **opt)
        return simulate_detection(workload, config, trace, schedule)

    def test_paper_variant_ordering(self, alexnet_env):
        """Fig. 11's qualitative result: BwCu >> Hybrid > BwAb > FwAb in
        latency; FwAb is within a few percent of plain inference."""
        model, workload, ds = alexnet_env
        bwcu = self._cost(model, ds, workload, "BwCu")
        bwab = self._cost(model, ds, workload, "BwAb")
        fwab = self._cost(model, ds, workload, "FwAb")
        hybrid = self._cost(model, ds, workload, "Hybrid")
        assert bwcu.latency_overhead > hybrid.latency_overhead
        assert hybrid.latency_overhead > bwab.latency_overhead
        assert bwab.latency_overhead >= fwab.latency_overhead
        assert fwab.latency_overhead < 1.10
        assert bwcu.energy_overhead > bwab.energy_overhead

    def test_overheads_at_least_one(self, alexnet_env):
        model, workload, ds = alexnet_env
        for variant in ("BwCu", "BwAb", "FwAb", "Hybrid"):
            cost = self._cost(model, ds, workload, variant)
            assert cost.latency_overhead >= 1.0
            assert cost.energy_overhead >= 1.0

    def test_recompute_cuts_bwcu_energy(self, alexnet_env):
        """The compute-for-memory trade-off of Sec. IV-B."""
        model, workload, ds = alexnet_env
        stored = self._cost(model, ds, workload, "BwCu", recompute=False)
        recomputed = self._cost(model, ds, workload, "BwCu", recompute=True)
        assert recomputed.energy_overhead < stored.energy_overhead
        assert recomputed.dram.space_bytes < stored.dram.space_bytes

    def test_neuron_pipelining_helps_bwcu(self, alexnet_env):
        model, workload, ds = alexnet_env
        on = self._cost(model, ds, workload, "BwCu", neuron_pipelining=True)
        off = self._cost(model, ds, workload, "BwCu", neuron_pipelining=False)
        assert on.total_cycles <= off.total_cycles

    def test_layer_pipelining_hides_forward_extraction(self, alexnet_env):
        model, workload, ds = alexnet_env
        on = self._cost(model, ds, workload, "FwAb", layer_pipelining=True)
        off = self._cost(model, ds, workload, "FwAb", layer_pipelining=False)
        assert on.total_cycles <= off.total_cycles


class TestController:
    def test_rf_op_count(self):
        cost = controller_cost(DEFAULT_HW)
        assert cost.classify_cycles == 100 * 12 * 2
        assert cost.energy_pj > 0


class TestArea:
    def test_default_overhead_near_paper(self):
        """Sec. VII-A: ~5.2% total, ~3.9 points from SRAM."""
        report = area_report(DEFAULT_HW)
        breakdown = report.breakdown()
        assert 4.0 <= breakdown["overhead_pct"] <= 7.0
        assert breakdown["sram_pct_points"] > breakdown["mac_aug_pct_points"]

    def test_8bit_overhead_increases(self):
        """Sec. VII-G: 8-bit raises the overhead (5.2% -> 5.5%)."""
        base = area_report(DEFAULT_HW).overhead
        eight = area_report(DEFAULT_HW.with_8bit()).overhead
        assert eight > base

    def test_unsupported_width_rejected(self):
        from dataclasses import replace

        with pytest.raises(ValueError):
            area_report(replace(DEFAULT_HW, datapath_bits=4))

    def test_invalid_hw_config(self):
        with pytest.raises(ValueError):
            HardwareConfig(array_rows=0)
        with pytest.raises(ValueError):
            HardwareConfig(merge_tree_length=1)
