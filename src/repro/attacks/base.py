"""Attack base class and shared gradient helpers.

All attacks operate on single samples or batches in [0, 1] image space
and return perturbed inputs of the same shape.  They need only the
model's input gradient, which :class:`~repro.nn.graph.Graph` provides
through its explicit backward pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.functional import one_hot, softmax
from repro.nn.graph import Graph

__all__ = ["Attack", "AttackResult", "input_gradient", "logit_gradient"]


def input_gradient(model: Graph, x: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """d(cross-entropy)/dx for the given labels."""
    logits = model.forward(x)
    probs = softmax(logits)
    grad_logits = (probs - one_hot(labels, logits.shape[1])) / x.shape[0]
    return model.backward(grad_logits)


def logit_gradient(model: Graph, x: np.ndarray, seed: np.ndarray) -> np.ndarray:
    """dx of an arbitrary linear combination of logits (``seed`` are the
    per-logit weights).  Requires a prior ``model.forward(x)``."""
    return model.backward(seed)


@dataclass
class AttackResult:
    """Adversarial samples plus bookkeeping."""

    x_adv: np.ndarray
    success: np.ndarray  # per-sample: prediction changed from true label
    queries: int = 0

    @property
    def success_rate(self) -> float:
        return float(self.success.mean()) if self.success.size else 0.0


class Attack:
    """Base class; subclasses implement :meth:`perturb`."""

    name = "attack"
    #: perturbation measure, one of "l0", "l2", "linf" (Sec. VI-A)
    norm = "linf"

    def perturb(self, model: Graph, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def generate(self, model: Graph, x: np.ndarray, y: np.ndarray) -> AttackResult:
        """Run the attack and record per-sample success."""
        was_training = model.training
        model.train(False)
        try:
            x_adv = self.perturb(model, np.asarray(x, dtype=np.float64), y)
        finally:
            model.train(was_training)
        preds = model.predict(x_adv)
        return AttackResult(x_adv=x_adv, success=preds != np.asarray(y))

    @staticmethod
    def _clip(x: np.ndarray) -> np.ndarray:
        return np.clip(x, 0.0, 1.0)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
