"""Core machinery for the repo-specific static analyzer.

The analyzer enforces the invariants the serving stack's bit-identity
guarantee rests on (shm lifecycle, lock discipline, backend dispatch,
error-schema conformance) as AST checks with stable rule codes.  It is
stdlib-only on purpose: like ``scripts/lint.py`` and
``scripts/check_report_schema.py`` it must run offline, in CI, and in
any contributor checkout without installing anything.

Vocabulary
----------
* :class:`Finding` — one violation at one source location.
* :class:`Checker` — one rule; subclasses register themselves via
  :func:`register` and yield findings from :meth:`Checker.check`.
* :class:`FileContext` — a parsed file plus the parent map and scope
  helpers every checker needs.
* ``# repro: noqa[RPR101]`` on the flagged line suppresses a finding;
  ``# repro: noqa`` (no codes) suppresses every rule on that line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

# Rule code for files the analyzer cannot parse at all.  Not a Checker:
# there is no AST to hand one.
PARSE_ERROR_CODE = "RPR001"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9,\s]*)\])?", re.IGNORECASE
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: line numbers drift, so grandfathered
        findings match on (rule, path, stripped source line) instead."""
        return (self.rule, self.path, self.snippet.strip())

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }


class FileContext:
    """A parsed source file with the lookups checkers share."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    # -- tree navigation ------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from the node's parent up to the module root."""
        cur = self._parents.get(node)
        while cur is not None:
            yield cur
            cur = self._parents.get(cur)

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.AST]:
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        for anc in self.ancestors(node):
            if isinstance(anc, ast.ClassDef):
                return anc
        return None

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    # -- suppression ----------------------------------------------------
    def suppressed(self, lineno: int, rule: str) -> bool:
        """True when the physical line carries a matching
        ``# repro: noqa`` comment."""
        match = _NOQA_RE.search(self.line_text(lineno))
        if match is None:
            return False
        codes = match.group("codes")
        if codes is None:
            return True  # bare "repro: noqa" silences every rule
        wanted = {c.strip().upper() for c in codes.split(",") if c.strip()}
        return rule.upper() in wanted


class Checker:
    """Base class for one analyzer rule.

    Subclasses set ``code``/``name``/``summary``, optionally narrow
    ``applies`` to a path subset, and yield :class:`Finding` objects
    from :meth:`check`.  Use :meth:`finding` so snippets and locations
    stay uniform.
    """

    code: str = "RPR000"
    name: str = "abstract"
    summary: str = ""
    #: Human description of the path subset the rule runs on.
    paths_note: str = "all files"

    def applies(self, path: str) -> bool:
        """Whether this rule runs on ``path`` (posix, repo-relative)."""
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.code,
            path=ctx.path,
            line=lineno,
            col=col,
            message=message,
            snippet=ctx.line_text(lineno).strip(),
        )


_REGISTRY: List[Type[Checker]] = []


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a rule to the global registry."""
    codes = {c.code for c in _REGISTRY}
    if cls.code in codes:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY.append(cls)
    return cls


def all_checkers() -> List[Checker]:
    """Fresh instances of every registered rule, sorted by code."""
    return [cls() for cls in sorted(_REGISTRY, key=lambda c: c.code)]


# -- shared AST helpers -------------------------------------------------

def call_name(node: ast.Call) -> str:
    """Dotted name of a call target: ``np.bitwise_count`` ->
    ``"np.bitwise_count"``; unresolvable shapes -> ``""``."""
    return dotted_name(node.func)


def dotted_name(node: ast.AST) -> str:
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
    elif not parts:
        return ""
    return ".".join(reversed(parts))


def contains_call(
    nodes: Sequence[ast.AST], attr: str
) -> bool:
    """True when any node in ``nodes`` (recursively) calls ``.attr(...)``
    or a bare function named ``attr``."""
    for root in nodes:
        for sub in ast.walk(root):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if isinstance(func, ast.Attribute) and func.attr == attr:
                return True
            if isinstance(func, ast.Name) and func.id == attr:
                return True
    return False


def literal_int(node: ast.AST) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    return None


def literal_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
