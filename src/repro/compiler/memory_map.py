"""Static memory layout for compiled detection programs.

The compiler statically allocates every buffer the detection program
touches (possible because, as the paper notes in Sec. IV-B, compute
and memory behaviour of both inference and detection are known at
compile time).  Mask regions for the extracted taps are laid out
contiguously in layout order so the activation path is a single
region the ``cls`` instruction can scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.config import Direction, ExtractionConfig
from repro.nn.graph import Graph

__all__ = ["MemoryMap"]


@dataclass
class Region:
    """A named, contiguous range of memory words."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size


class MemoryMap:
    """Allocates word-addressed regions for one (model, config) pair.

    Must be built after a model warm-up forward pass (feature-map
    shapes must be known).
    """

    def __init__(self, model: Graph, config: ExtractionConfig,
                 base: int = 16):
        self.model = model
        self.config = config
        self.units = model.extraction_units()
        self._next = base
        self.regions: Dict[str, Region] = {}

        out_sizes = [n.module.output_feature_size for n in self.units]
        in_sizes = [n.module.input_feature_size for n in self.units]
        rf_sizes = [n.module.nominal_rf_size() for n in self.units]

        # feature-map value buffers (written by inf, read by findneuron)
        for i, size in enumerate(out_sizes):
            self._alloc(f"ofmap{i}", size)
        # weight-region handles (not materialised; operand fidelity only)
        for i in range(len(self.units)):
            self._alloc(f"weights{i}", 0)
        # activation-path mask regions, contiguous in layout order
        extracted = config.extracted_indices()
        first_tap = None
        for i in extracted:
            size = (
                in_sizes[i]
                if config.direction is Direction.BACKWARD
                else out_sizes[i]
            )
            region = self._alloc(f"mask{i}", size)
            if first_tap is None:
                first_tap = region
        assert first_tap is not None
        self.path_base = first_tap.base
        self.path_bits = sum(
            self.regions[f"mask{i}"].size for i in extracted
        )
        # seed mask over the final logits feature map (backward start)
        self._alloc("seed", out_sizes[-1])
        # scratch: psum pair lists (count + 2N words) and index list
        max_rf = max(rf_sizes)
        self._alloc("psum_raw", 1 + 2 * max_rf)
        self._alloc("psum_sorted", 1 + 2 * max_rf)
        self._alloc("implist", 1 + max(in_sizes))
        # canary class path (count-prefixed) + result word
        self._alloc("classpath", 1 + self.path_bits)
        self._alloc("result", 1)

    def _alloc(self, name: str, size: int) -> Region:
        region = Region(name, self._next, size)
        self.regions[name] = region
        self._next += size
        return region

    # -- lookups ----------------------------------------------------------
    def base(self, name: str) -> int:
        return self.regions[name].base

    def ofmap(self, unit: int) -> int:
        return self.base(f"ofmap{unit}")

    def mask(self, unit: int) -> int:
        return self.base(f"mask{unit}")

    def output_mask(self, unit: int) -> int:
        """Mask region covering unit ``unit``'s *output* feature map in a
        backward program: the input mask of the next extracted unit, or
        the seed region for the final unit."""
        if unit == len(self.units) - 1:
            return self.base("seed")
        return self.mask(unit + 1)

    @property
    def total_words(self) -> int:
        return self._next

    def describe(self) -> List[str]:
        return [
            f"{r.base:6d}..{r.end - 1:6d}  {r.name} ({r.size} words)"
            for r in self.regions.values()
            if r.size
        ]
