"""Adaptive attacks against Ptolemy itself (Sec. VII-E).

The attacker knows the defense: it tries to give an adversarial sample
the same activation path as a benign input.  Because path construction
(ranking/thresholding) is non-differentiable, the paper relaxes the
hard path constraint to a differentiable activation-matching objective:

    minimise  sum_i || z_i(x + delta) - z_i(x_t) ||_2^2

over the activations ``z_i`` of the last ``n`` layers (ATn), where
``x_t`` is a benign input of a different target class.  Five targets of
distinct classes are tried and the lowest-loss sample is kept.  The
optimiser is projected gradient descent; the attack is unbounded, so
validity is judged by distortion (MSE), as the paper does in Fig. 14.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.attacks.base import Attack
from repro.nn.graph import Graph

__all__ = ["AdaptiveAttack", "AdaptiveSample"]


@dataclass
class AdaptiveSample:
    """One adaptive adversarial sample plus its metadata."""

    x_adv: np.ndarray
    distortion_mse: float
    target_class: int
    matching_loss: float
    success: bool


class AdaptiveAttack(Attack):
    """Activation-matching adaptive attack (ATn)."""

    name = "adaptive"
    norm = "l2"

    def __init__(
        self,
        x_pool: np.ndarray,
        y_pool: np.ndarray,
        layers_considered: int = 3,
        steps: int = 40,
        lr: float = 0.05,
        num_targets: int = 5,
        seed: int = 0,
    ):
        """``x_pool``/``y_pool`` supply the benign targets ``x_t``;
        ``layers_considered`` is the ``n`` in ATn (activations of the
        last ``n`` extraction units enter the loss)."""
        if layers_considered < 1:
            raise ValueError("layers_considered must be >= 1")
        if steps < 1 or lr <= 0 or num_targets < 1:
            raise ValueError("invalid adaptive attack parameters")
        self.x_pool = np.asarray(x_pool, dtype=np.float64)
        self.y_pool = np.asarray(y_pool)
        self.layers_considered = layers_considered
        self.steps = steps
        self.lr = lr
        self.num_targets = num_targets
        self._rng = np.random.default_rng(seed)
        self.last_samples: List[AdaptiveSample] = []

    # -- helpers ----------------------------------------------------------
    def _target_layer_names(self, model: Graph) -> List[str]:
        units = model.extraction_units()
        n = min(self.layers_considered, len(units))
        return [node.name for node in units[-n:]]

    def _activations(
        self, model: Graph, x: np.ndarray, names: List[str]
    ) -> Dict[str, np.ndarray]:
        model.forward(x)
        return {name: model.activations[name].copy() for name in names}

    def _match(
        self,
        model: Graph,
        x: np.ndarray,
        target_acts: Dict[str, np.ndarray],
        names: List[str],
    ) -> Tuple[np.ndarray, float]:
        """PGD on the activation-matching loss; returns (x_adv, loss)."""
        x_adv = x.copy()
        for _ in range(self.steps):
            model.forward(x_adv)
            seeds: Dict[str, np.ndarray] = {}
            loss = 0.0
            for name in names:
                diff = model.activations[name] - target_acts[name]
                loss += float((diff ** 2).sum())
                seeds[name] = 2.0 * diff
            grad = model.backward_from(seeds)
            norm = np.linalg.norm(grad)
            if norm < 1e-12:
                break
            x_adv = self._clip(x_adv - self.lr * grad / norm)
        model.forward(x_adv)
        final_loss = sum(
            float(((model.activations[n] - target_acts[n]) ** 2).sum())
            for n in names
        )
        return x_adv, final_loss

    # -- attack API ------------------------------------------------------
    def perturb(self, model: Graph, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        self.last_samples = []
        out = np.empty_like(x)
        for i in range(x.shape[0]):
            sample = self.perturb_one(model, x[i : i + 1], int(y[i]))
            out[i] = sample.x_adv[0]
            self.last_samples.append(sample)
        return out

    def perturb_one(self, model: Graph, x: np.ndarray, label: int) -> AdaptiveSample:
        """Attack one input: try ``num_targets`` benign targets of
        distinct non-true classes, keep the lowest-loss result."""
        names = self._target_layer_names(model)
        other_classes = np.unique(self.y_pool[self.y_pool != label])
        if other_classes.size == 0:
            raise ValueError("target pool has no other-class samples")
        picked = self._rng.permutation(other_classes)[: self.num_targets]
        best: Optional[AdaptiveSample] = None
        for target_class in picked:
            candidates = np.flatnonzero(self.y_pool == target_class)
            xt = self.x_pool[self._rng.choice(candidates)][None]
            target_acts = self._activations(model, xt, names)
            x_adv, loss = self._match(model, x, target_acts, names)
            pred = int(model.forward(x_adv)[0].argmax())
            mse = float(((x_adv - x) ** 2).mean())
            sample = AdaptiveSample(
                x_adv=x_adv,
                distortion_mse=mse,
                target_class=int(target_class),
                matching_loss=loss,
                success=pred != label,
            )
            # prefer successful samples; among those, lowest matching loss
            if best is None:
                best = sample
            elif sample.success and not best.success:
                best = sample
            elif sample.success == best.success and loss < best.matching_loss:
                best = sample
        assert best is not None
        return best
