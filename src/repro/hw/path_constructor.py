"""Timing/energy model of the path constructor (Sec. V-C, Fig. 9b).

Sorting splits a receptive field into 16-element chunks sorted in
parallel by the sort units (bitonic networks), then merged by an
M-way merge tree at one element per cycle per level.  Accumulation and
mask generation are streaming units; path similarity is a bit-parallel
AND + popcount.
"""

from __future__ import annotations

import math

from repro.hw.config import HardwareConfig

__all__ = [
    "sort_cycles",
    "sort_energy_pj",
    "acum_cycles",
    "acum_energy_pj",
    "mask_cycles",
    "mask_energy_pj",
    "similarity_cycles",
    "similarity_energy_pj",
]


def sort_cycles(n_elements: int, hw: HardwareConfig) -> int:
    """Cycles to sort one sequence of ``n_elements`` partial sums.

    chunks of ``sort_unit_width`` sorted ``num_sort_units`` at a time
    (``sort_network_stages`` cycles per pass), then ``ceil(log_M
    chunks)`` merge levels at one element per cycle per level.
    Sorting is memory-bound once the merge tree is wide (Fig. 18b's
    observation that more sort units barely help).
    """
    if n_elements <= 1:
        return n_elements
    chunks = math.ceil(n_elements / hw.sort_unit_width)
    passes = math.ceil(chunks / hw.num_sort_units)
    chunk_cycles = passes * hw.sort_network_stages
    merge_levels = max(
        1, math.ceil(math.log(chunks, hw.merge_tree_length))
    ) if chunks > 1 else 0
    merge_cycles = n_elements * merge_levels
    # SRAM streaming bound: each element is read and written once per
    # level; the 2 KB-banked psum SRAM sustains one element/cycle/port
    return chunk_cycles + merge_cycles


def sort_energy_pj(n_elements: int, hw: HardwareConfig) -> float:
    """Energy: CAS ops in the networks + merge steps + SRAM traffic."""
    if n_elements <= 1:
        return 0.0
    chunks = math.ceil(n_elements / hw.sort_unit_width)
    cas_ops = chunks * hw.sort_network_stages * (hw.sort_unit_width // 2)
    merge_levels = max(
        1, math.ceil(math.log(chunks, hw.merge_tree_length))
    ) if chunks > 1 else 0
    merge_ops = n_elements * merge_levels
    sram = 2.0 * n_elements * (1 + merge_levels)
    return (
        cas_ops * hw.energy.sort_cas
        + merge_ops * hw.energy.merge_op
        + sram * hw.energy.sram_word
    )


def acum_cycles(n_accumulated: int) -> int:
    """Streaming accumulate: one element per cycle until the threshold."""
    return n_accumulated


def acum_energy_pj(n_accumulated: int, hw: HardwareConfig) -> float:
    """Energy of the streaming accumulate (per element)."""
    return n_accumulated * hw.energy.accumulate


def mask_cycles(n_bits: int, hw: HardwareConfig) -> int:
    """Mask generation, ``mask_popcount_bits`` per cycle."""
    return math.ceil(n_bits / hw.mask_popcount_bits)


def mask_energy_pj(n_bits: int, hw: HardwareConfig) -> float:
    """Energy of writing one mask bit per important-neuron position."""
    return n_bits * hw.energy.mask_bit


def similarity_cycles(path_bits: int, hw: HardwareConfig) -> int:
    """AND + popcount over the whole path, bit-parallel."""
    return math.ceil(path_bits / hw.mask_popcount_bits)


def similarity_energy_pj(path_bits: int, hw: HardwareConfig) -> float:
    """Energy of the bit-parallel AND + popcount similarity."""
    return 2.0 * path_bits * hw.energy.mask_bit
