"""Model adapter giving the CISC inference instructions their semantics.

In the real hardware, ``inf``/``infsp``/``csps`` run on the (augmented)
DNN accelerator and ``findneuron``/``findrf`` are address calculations
sequenced by an FSM.  In the ISS these delegate to the bound model:
``inf`` runs the layer and deposits its output feature map in machine
memory; ``csps`` recomputes the (partial sum, input position) pairs of
one output neuron — exactly the recompute optimisation of Sec. IV-B.

The adapter also performs the controller's seeding step: after the
final layer's ``inf``, the predicted-class bit is written into the
seed-mask region (the controller knows the prediction because it reads
the logits to drive classification).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.compiler.memory_map import MemoryMap
from repro.nn.graph import Graph

__all__ = ["ModelAdapter"]


class ModelAdapter:
    """Binds a model + input to a Machine's CISC instructions."""

    def __init__(self, model: Graph, mem_map: MemoryMap, x: np.ndarray):
        if x.shape[0] != 1:
            raise ValueError("adapter operates on a single-sample batch")
        self.model = model
        self.mem_map = mem_map
        self.units = model.extraction_units()
        self.x = x
        self._ran_inference = False
        self._ofmap_to_unit = {
            mem_map.ofmap(i): i for i in range(len(self.units))
        }
        self.predicted_class: Optional[int] = None
        #: whether infsp stored partial sums (affects the cost model, not
        #: functional behaviour: csps recomputes either way in the ISS)
        self.psums_stored = set()

    # -- inference ----------------------------------------------------
    def _ensure_forward(self) -> None:
        if not self._ran_inference:
            logits = self.model.forward(self.x)
            self.predicted_class = int(logits[0].argmax())
            self._ran_inference = True

    def inf(self, machine, in_addr, w_addr, out_addr) -> None:
        """Run one layer; deposit its output feature map at out_addr."""
        self._ensure_forward()
        unit_idx = self._ofmap_to_unit.get(int(out_addr))
        if unit_idx is None:
            raise ValueError(f"inf: unknown output region {out_addr}")
        node = self.units[unit_idx]
        values = self.model.activations[node.name][0].ravel()
        base = int(out_addr)
        machine.memory[base : base + values.size] = values
        if unit_idx == len(self.units) - 1:
            self._seed_prediction(machine)

    def infsp(self, machine, in_addr, w_addr, out_addr, psum_addr) -> None:
        """inf + store partial sums (BwCu without the recompute pass)."""
        self.inf(machine, in_addr, w_addr, out_addr)
        unit_idx = self._ofmap_to_unit[int(out_addr)]
        self.psums_stored.add(unit_idx)

    def _seed_prediction(self, machine) -> None:
        """Controller action: set the predicted-class bit in the seed
        mask (backward extraction starts from the predicted class)."""
        from repro.isa.machine import FIXED_ONE

        assert self.predicted_class is not None
        seed = self.mem_map.base("seed")
        machine.memory[seed + self.predicted_class] = float(FIXED_ONE)

    # -- path construction helpers -------------------------------------
    def csps(self, machine, neuron_pos: int, layer_id: int, dst: int) -> None:
        """Write the count-prefixed (partial sum, input position) pair
        list of one output neuron to ``dst``."""
        self._ensure_forward()
        module = self.units[layer_id].module
        psums = module.partial_sums(neuron_pos)
        rf = module.receptive_field(neuron_pos)
        machine.memory[dst] = psums.size
        pairs = np.empty(2 * psums.size)
        pairs[0::2] = psums
        pairs[1::2] = rf
        machine.memory[dst + 1 : dst + 1 + pairs.size] = pairs

    def rf_size(self, layer_id: int) -> int:
        """Nominal receptive-field size of a unit (used by the timed
        machine to size ``csps`` micro-ops)."""
        return self.units[layer_id].module.nominal_rf_size()

    def findneuron(self, machine, layer_id: int, position: int) -> int:
        """Address of a neuron's value in its layer's ofmap region."""
        out_size = self.units[layer_id].module.output_feature_size
        if not 0 <= position < out_size:
            raise IndexError(
                f"neuron {position} out of range for layer {layer_id}"
            )
        return self.mem_map.ofmap(layer_id) + position

    def findrf(self, machine, neuron_addr: int) -> int:
        """Start address of the receptive field of a neuron.

        For dense layers the receptive field is the whole previous
        feature map; the compiled programs in this repo use ``csps``
        (which embeds positions) so this is provided for ISA
        completeness and Listing-1-style programs.
        """
        for base, unit_idx in self._ofmap_to_unit.items():
            size = self.units[unit_idx].module.output_feature_size
            if base <= neuron_addr < base + size:
                if unit_idx == 0:
                    raise ValueError("first layer has no in-memory ifmap")
                return self.mem_map.ofmap(unit_idx - 1)
        raise ValueError(f"address {neuron_addr} is not inside an ofmap")
