"""Model zoo: scaled-down versions of every architecture in the paper.

The paper evaluates AlexNet, ResNet18, ResNet50, VGG16/19, DenseNet and
Inception-V4.  We build "Mini" versions with the same *structure*
(extraction-unit counts, residual/concat topology, pooling placement)
at a scale that trains in seconds on synthetic data.  The extraction-
unit count is the quantity that matters to Ptolemy: MiniAlexNet has 8
units like AlexNet (so adaptive attack AT8 means "all layers") and
MiniResNet18 has 18 main-path units like ResNet18.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.graph import Graph
from repro.nn.layers import (
    Add,
    AvgPool2d,
    BatchNorm2d,
    Concat,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
)

__all__ = [
    "build_mlp",
    "build_mini_alexnet",
    "build_mini_resnet18",
    "build_mini_resnet50",
    "build_mini_vgg",
    "build_mini_densenet",
    "build_mini_inception",
    "MODEL_BUILDERS",
]


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def build_mlp(
    in_features: int = 64,
    hidden: Sequence[int] = (48, 32),
    num_classes: int = 10,
    seed: Optional[int] = 0,
) -> Graph:
    """Plain MLP; the smallest model that exercises path extraction."""
    rng = _rng(seed)
    graph = Graph("mlp")
    prev_size = in_features
    for i, width in enumerate(hidden):
        graph.add(f"fc{i + 1}", Linear(prev_size, width, rng=rng))
        graph.add(f"relu{i + 1}", ReLU())
        prev_size = width
    graph.add("logits", Linear(prev_size, num_classes, rng=rng))
    return graph


def build_mini_alexnet(
    in_channels: int = 3,
    image_size: int = 16,
    num_classes: int = 10,
    width: int = 8,
    seed: Optional[int] = 0,
) -> Graph:
    """AlexNet-shaped: 5 conv + 3 fc = 8 extraction units."""
    rng = _rng(seed)
    g = Graph("mini_alexnet")
    g.add("conv1", Conv2d(in_channels, width, 3, padding=1, rng=rng))
    g.add("relu1", ReLU())
    g.add("pool1", MaxPool2d(2))
    g.add("conv2", Conv2d(width, width * 2, 3, padding=1, rng=rng))
    g.add("relu2", ReLU())
    g.add("pool2", MaxPool2d(2))
    g.add("conv3", Conv2d(width * 2, width * 3, 3, padding=1, rng=rng))
    g.add("relu3", ReLU())
    g.add("conv4", Conv2d(width * 3, width * 3, 3, padding=1, rng=rng))
    g.add("relu4", ReLU())
    g.add("conv5", Conv2d(width * 3, width * 2, 3, padding=1, rng=rng))
    g.add("relu5", ReLU())
    g.add("pool5", MaxPool2d(2))
    g.add("flatten", Flatten())
    feat = width * 2 * (image_size // 8) ** 2
    g.add("fc6", Linear(feat, 48, rng=rng))
    g.add("relu6", ReLU())
    g.add("fc7", Linear(48, 48, rng=rng))
    g.add("relu7", ReLU())
    g.add("fc8", Linear(48, num_classes, rng=rng))
    return g


def _basic_block(
    g: Graph,
    name: str,
    in_name: str,
    in_ch: int,
    out_ch: int,
    stride: int,
    rng: np.random.Generator,
) -> str:
    """ResNet basic block: two 3x3 convs + identity/projection shortcut."""
    g.add(f"{name}_conv1", Conv2d(in_ch, out_ch, 3, stride=stride, padding=1,
                                  bias=False, rng=rng), [in_name])
    g.add(f"{name}_bn1", BatchNorm2d(out_ch))
    g.add(f"{name}_relu1", ReLU())
    g.add(f"{name}_conv2", Conv2d(out_ch, out_ch, 3, padding=1, bias=False, rng=rng))
    g.add(f"{name}_bn2", BatchNorm2d(out_ch))
    if stride != 1 or in_ch != out_ch:
        g.add(f"{name}_proj", Conv2d(in_ch, out_ch, 1, stride=stride,
                                     bias=False, rng=rng), [in_name])
        g.add(f"{name}_proj_bn", BatchNorm2d(out_ch))
        shortcut = f"{name}_proj_bn"
    else:
        shortcut = in_name
    g.add(f"{name}_add", Add(), [f"{name}_bn2", shortcut])
    g.add(f"{name}_relu2", ReLU())
    return f"{name}_relu2"


def build_mini_resnet18(
    in_channels: int = 3,
    num_classes: int = 10,
    width: int = 8,
    seed: Optional[int] = 0,
) -> Graph:
    """ResNet18-shaped: stem + 4 stages x 2 basic blocks + fc.

    Main-path extraction units: 1 + 16 + 1 = 18, matching ResNet18.
    Projection shortcuts add three more 1x1 conv units, as in the
    original architecture.
    """
    rng = _rng(seed)
    g = Graph("mini_resnet18")
    g.add("conv1", Conv2d(in_channels, width, 3, padding=1, bias=False, rng=rng))
    g.add("bn1", BatchNorm2d(width))
    g.add("relu1", ReLU())
    prev = "relu1"
    channels = [width, width * 2, width * 4, width * 4]
    in_ch = width
    for stage, out_ch in enumerate(channels):
        for block in range(2):
            stride = 2 if (stage > 0 and block == 0) else 1
            prev = _basic_block(
                g, f"s{stage + 1}b{block + 1}", prev, in_ch, out_ch, stride, rng
            )
            in_ch = out_ch
    g.add("gap", GlobalAvgPool2d(), [prev])
    g.add("fc", Linear(in_ch, num_classes, rng=rng))
    return g


def _bottleneck_block(
    g: Graph,
    name: str,
    in_name: str,
    in_ch: int,
    mid_ch: int,
    out_ch: int,
    stride: int,
    rng: np.random.Generator,
) -> str:
    """ResNet bottleneck: 1x1 reduce, 3x3, 1x1 expand + shortcut."""
    g.add(f"{name}_conv1", Conv2d(in_ch, mid_ch, 1, bias=False, rng=rng), [in_name])
    g.add(f"{name}_bn1", BatchNorm2d(mid_ch))
    g.add(f"{name}_relu1", ReLU())
    g.add(f"{name}_conv2", Conv2d(mid_ch, mid_ch, 3, stride=stride, padding=1,
                                  bias=False, rng=rng))
    g.add(f"{name}_bn2", BatchNorm2d(mid_ch))
    g.add(f"{name}_relu2", ReLU())
    g.add(f"{name}_conv3", Conv2d(mid_ch, out_ch, 1, bias=False, rng=rng))
    g.add(f"{name}_bn3", BatchNorm2d(out_ch))
    if stride != 1 or in_ch != out_ch:
        g.add(f"{name}_proj", Conv2d(in_ch, out_ch, 1, stride=stride,
                                     bias=False, rng=rng), [in_name])
        g.add(f"{name}_proj_bn", BatchNorm2d(out_ch))
        shortcut = f"{name}_proj_bn"
    else:
        shortcut = in_name
    g.add(f"{name}_add", Add(), [f"{name}_bn3", shortcut])
    g.add(f"{name}_relu3", ReLU())
    return f"{name}_relu3"


def build_mini_resnet50(
    in_channels: int = 3,
    num_classes: int = 10,
    width: int = 8,
    blocks_per_stage: Sequence[int] = (2, 2, 2, 2),
    seed: Optional[int] = 0,
) -> Graph:
    """ResNet50-shaped: bottleneck blocks (1x1/3x3/1x1) in four stages."""
    rng = _rng(seed)
    g = Graph("mini_resnet50")
    g.add("conv1", Conv2d(in_channels, width, 3, padding=1, bias=False, rng=rng))
    g.add("bn1", BatchNorm2d(width))
    g.add("relu1", ReLU())
    prev = "relu1"
    in_ch = width
    for stage, num_blocks in enumerate(blocks_per_stage):
        mid_ch = width * (2 ** min(stage, 2))
        out_ch = mid_ch * 2
        for block in range(num_blocks):
            stride = 2 if (stage > 0 and block == 0) else 1
            prev = _bottleneck_block(
                g, f"s{stage + 1}b{block + 1}", prev, in_ch, mid_ch, out_ch,
                stride, rng,
            )
            in_ch = out_ch
    g.add("gap", GlobalAvgPool2d(), [prev])
    g.add("fc", Linear(in_ch, num_classes, rng=rng))
    return g


def build_mini_vgg(
    in_channels: int = 3,
    image_size: int = 16,
    num_classes: int = 10,
    width: int = 8,
    depth: str = "vgg16",
    seed: Optional[int] = 0,
) -> Graph:
    """VGG-shaped stacks of 3x3 convs with pooling between stages.

    ``vgg16`` has 13 convs + 3 fc, ``vgg19`` has 16 convs + 3 fc —
    the same unit counts as the originals.
    """
    plans = {
        "vgg16": [2, 2, 3, 3, 3],
        "vgg19": [2, 2, 4, 4, 4],
    }
    if depth not in plans:
        raise ValueError(f"depth must be one of {sorted(plans)}")
    rng = _rng(seed)
    g = Graph(f"mini_{depth}")
    in_ch = in_channels
    conv_idx = 0
    size = image_size
    for stage, convs in enumerate(plans[depth]):
        out_ch = min(width * (2 ** stage), width * 8)
        for _ in range(convs):
            conv_idx += 1
            g.add(f"conv{conv_idx}", Conv2d(in_ch, out_ch, 3, padding=1, rng=rng))
            g.add(f"relu{conv_idx}", ReLU())
            in_ch = out_ch
        if size > 1:
            g.add(f"pool{stage + 1}", MaxPool2d(2))
            size //= 2
    g.add("flatten", Flatten())
    g.add("fc1", Linear(in_ch * size * size, 48, rng=rng))
    g.add("fc1_relu", ReLU())
    g.add("fc2", Linear(48, 48, rng=rng))
    g.add("fc2_relu", ReLU())
    g.add("fc3", Linear(48, num_classes, rng=rng))
    return g


def build_mini_densenet(
    in_channels: int = 3,
    num_classes: int = 10,
    growth: int = 4,
    block_layers: Sequence[int] = (3, 3),
    seed: Optional[int] = 0,
) -> Graph:
    """DenseNet-shaped: dense blocks where every conv sees all previous
    feature maps via channel concatenation, plus transition pooling."""
    rng = _rng(seed)
    g = Graph("mini_densenet")
    g.add("stem", Conv2d(in_channels, growth * 2, 3, padding=1, rng=rng))
    g.add("stem_relu", ReLU())
    prev = "stem_relu"
    channels = growth * 2
    for block_idx, num_layers in enumerate(block_layers):
        features = [prev]
        for layer_idx in range(num_layers):
            name = f"d{block_idx + 1}l{layer_idx + 1}"
            if len(features) > 1:
                g.add(f"{name}_cat", Concat(), features)
                source = f"{name}_cat"
            else:
                source = features[0]
            g.add(f"{name}_conv", Conv2d(channels, growth, 3, padding=1, rng=rng),
                  [source])
            g.add(f"{name}_relu", ReLU())
            features.append(f"{name}_relu")
            channels += growth
        g.add(f"block{block_idx + 1}_out", Concat(), features)
        prev = f"block{block_idx + 1}_out"
        if block_idx < len(block_layers) - 1:
            g.add(f"trans{block_idx + 1}_conv",
                  Conv2d(channels, channels // 2, 1, rng=rng), [prev])
            g.add(f"trans{block_idx + 1}_pool", AvgPool2d(2))
            prev = f"trans{block_idx + 1}_pool"
            channels //= 2
    g.add("gap", GlobalAvgPool2d(), [prev])
    g.add("fc", Linear(channels, num_classes, rng=rng))
    return g


def _inception_module(
    g: Graph,
    name: str,
    in_name: str,
    in_ch: int,
    branch_ch: int,
    rng: np.random.Generator,
) -> str:
    """Inception module: parallel 1x1 / 3x3 / 5x5 / pool-1x1 branches."""
    g.add(f"{name}_b1", Conv2d(in_ch, branch_ch, 1, rng=rng), [in_name])
    g.add(f"{name}_b1_relu", ReLU())
    g.add(f"{name}_b3", Conv2d(in_ch, branch_ch, 3, padding=1, rng=rng), [in_name])
    g.add(f"{name}_b3_relu", ReLU())
    g.add(f"{name}_b5", Conv2d(in_ch, branch_ch, 5, padding=2, rng=rng), [in_name])
    g.add(f"{name}_b5_relu", ReLU())
    # the pool branch uses a stride-1 3x3 conv stand-in so spatial dims match
    g.add(f"{name}_bp", Conv2d(in_ch, branch_ch, 3, padding=1, stride=1, rng=rng),
          [in_name])
    g.add(f"{name}_bp_relu", ReLU())
    g.add(f"{name}_cat", Concat(),
          [f"{name}_b1_relu", f"{name}_b3_relu", f"{name}_b5_relu",
           f"{name}_bp_relu"])
    return f"{name}_cat"


def build_mini_inception(
    in_channels: int = 3,
    num_classes: int = 10,
    width: int = 4,
    num_modules: int = 2,
    seed: Optional[int] = 0,
) -> Graph:
    """Inception-shaped: stem + stacked multi-branch concat modules."""
    rng = _rng(seed)
    g = Graph("mini_inception")
    g.add("stem", Conv2d(in_channels, width * 2, 3, padding=1, rng=rng))
    g.add("stem_relu", ReLU())
    g.add("stem_pool", MaxPool2d(2))
    prev = "stem_pool"
    in_ch = width * 2
    for i in range(num_modules):
        prev = _inception_module(g, f"inc{i + 1}", prev, in_ch, width, rng)
        in_ch = width * 4
    g.add("gap", GlobalAvgPool2d(), [prev])
    g.add("fc", Linear(in_ch, num_classes, rng=rng))
    return g


#: Registry used by the evaluation harness and examples.
MODEL_BUILDERS = {
    "mlp": build_mlp,
    "mini_alexnet": build_mini_alexnet,
    "mini_resnet18": build_mini_resnet18,
    "mini_resnet50": build_mini_resnet50,
    "mini_vgg": build_mini_vgg,
    "mini_densenet": build_mini_densenet,
    "mini_inception": build_mini_inception,
}
