"""Code generation: ExtractionConfig -> Ptolemy ISA program.

Generates the backward-cumulative (BwCu) detection program concretely
executable on the ISS — the algorithm of the paper's Listing 1 — plus
inference-only and forward-variant programs whose structure feeds the
timing model.  The generated loop is branch-minimal: instead of
testing each output neuron's importance bit, the theta target is
multiplied by the mask word (0 or 1 in Q8), so unimportant neurons get
a zero target and ``acum`` selects nothing.

Register conventions (r0 is a scratch/zero register by convention):

====  =======================================
r1    layer id
r2    loop counter (remaining neurons)
r3    receptive-field size (sort length)
r4    current neuron position
r5    theta in Q8 fixed point
r6    target (theta x value x mask gate)
r7    neuron value address (findneuron result)
r8    psum pair-list scratch base
r9    sorted pair-list scratch base
r10   important-index list scratch base
r11   output-mask region base (gating source)
r12   input-mask region base (genmasks dest)
r13   mask-word address scratch
r14/15 class path / activation path bases
====  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.compiler.memory_map import MemoryMap
from repro.core.backends import plan_row_tiles, tile_rows_for
from repro.core.bitmask import validate_segment_offsets
from repro.core.config import Direction, ExtractionConfig, Thresholding
from repro.isa.encoding import Opcode
from repro.isa.machine import FIXED_ONE
from repro.isa.program import Program
from repro.nn.graph import Graph

__all__ = [
    "compile_bwcu",
    "compile_inference",
    "theta_to_fixed",
    "KernelMicroOp",
    "BatchKernelSchedule",
    "compile_batch_containment",
    "compile_batch_per_tap",
]


def theta_to_fixed(theta: float) -> int:
    """Quantise theta to Q8 (the ISS multiplies thresholds in Q8).

    Thetas with <= 8 fractional bits (0.5, 0.25, 0.125...) are exact,
    which the ISS-vs-numpy equivalence tests rely on.
    """
    fixed = int(round(theta * FIXED_ONE))
    if not 0 <= fixed < (1 << 16):
        raise ValueError(f"theta {theta} out of Q8 range")
    return fixed


def _emit_inference(program: Program, mem_map: MemoryMap,
                    store_psums: bool) -> None:
    """inf/infsp for every unit, in topological order."""
    for i in range(len(mem_map.units)):
        program.append(Opcode.MOV, 1, mem_map.ofmap(i - 1) if i else 0,
                       comment=f"ifmap of unit {i}")
        program.append(Opcode.MOV, 2, mem_map.base(f"weights{i}"),
                       comment=f"weights of unit {i}")
        program.append(Opcode.MOV, 3, mem_map.ofmap(i),
                       comment=f"ofmap of unit {i}")
        if store_psums:
            program.append(Opcode.MOV, 4, mem_map.base("psum_raw"))
            program.append(Opcode.INFSP, 1, 2, 3, 4,
                           comment=f"inference unit {i} (store psums)")
        else:
            program.append(Opcode.INF, 1, 2, 3,
                           comment=f"inference unit {i}")


def compile_inference(model: Graph, config: ExtractionConfig) -> Program:
    """Inference-only program (the baseline the overheads normalise to)."""
    mem_map = MemoryMap(model, config)
    program = Program()
    _emit_inference(program, mem_map, store_psums=False)
    program.append(Opcode.HALT)
    return program


def compile_bwcu(
    model: Graph,
    config: ExtractionConfig,
    mem_map: MemoryMap,
    recompute: bool = True,
) -> Program:
    """Compile a backward-cumulative detection program.

    ``recompute=True`` applies the compute-for-memory trade-off of
    Sec. IV-B: inference uses plain ``inf`` and partial sums are
    re-computed by ``csps`` only for important neurons.  With
    ``recompute=False`` inference uses ``infsp`` (store all psums).

    Requirements: backward direction, cumulative thresholds on all
    extracted layers, and the extracted set forming a suffix of the
    network (which ExtractionConfig.bwcu guarantees).
    """
    if config.direction is not Direction.BACKWARD:
        raise ValueError("compile_bwcu requires a backward config")
    extracted = config.extracted_indices()
    num_units = len(mem_map.units)
    if extracted != list(range(min(extracted), num_units)):
        raise ValueError("backward extraction must cover a suffix of layers")
    for i in extracted:
        if config.layers[i].mechanism is not Thresholding.CUMULATIVE:
            raise ValueError("compile_bwcu handles cumulative layers only")

    program = Program()
    _emit_inference(program, mem_map, store_psums=not recompute)

    # extraction, from the last unit backward to the termination layer
    for unit in reversed(extracted):
        module = mem_map.units[unit].module
        out_size = module.output_feature_size
        rf_size = module.nominal_rf_size()
        theta = theta_to_fixed(config.layers[unit].threshold)
        program.append(Opcode.MOV, 1, unit, comment=f"--- extract unit {unit}")
        program.append(Opcode.MOV, 2, out_size, comment="loop counter")
        program.append(Opcode.MOV, 3, rf_size, comment="rf size")
        program.append(Opcode.MOV, 4, out_size - 1, comment="neuron position")
        program.append(Opcode.MOV, 5, theta, comment="theta (Q8)")
        program.append(Opcode.MOV, 8, mem_map.base("psum_raw"))
        program.append(Opcode.MOV, 9, mem_map.base("psum_sorted"))
        program.append(Opcode.MOV, 10, mem_map.base("implist"))
        program.append(Opcode.MOV, 11, mem_map.output_mask(unit),
                       comment="output importance mask (gate)")
        program.append(Opcode.MOV, 12, mem_map.mask(unit),
                       comment="input mask (tap)")
        program.label(f"loop{unit}")
        program.append(Opcode.FINDNEURON, 1, 4, 7, comment="addr of neuron value")
        program.append(Opcode.MOVR, 6, 5)
        program.append(Opcode.MUL, 6, 7, comment="target = theta * value")
        program.append(Opcode.ADD, 13, 11, 4, comment="mask word address")
        program.append(Opcode.MUL, 6, 13, comment="gate by importance bit")
        program.append(Opcode.CSPS, 4, 1, 8, comment="(re)compute psums")
        program.append(Opcode.SORT, 8, 3, 9)
        program.append(Opcode.ACUM, 9, 10, 6)
        program.append(Opcode.GENMASKS, 10, 12)
        program.append(Opcode.DEC, 4)
        program.append(Opcode.DEC, 2)
        jne_idx = program.append(Opcode.JNE, 0)
        program.patch(jne_idx, program.labels[f"loop{unit}"])

    program.append(Opcode.MOV, 14, mem_map.base("classpath"))
    program.append(Opcode.MOV, 15, mem_map.path_base)
    program.append(Opcode.CLS, 14, 15, 0, comment="similarity -> r0")
    program.append(Opcode.HALT)
    return program


# -- batch kernel schedules ------------------------------------------------
#
# The scalar detection program above extracts ONE activation path; the
# deployed service scores whole (N, words) packed batches at once.  The
# four-bit opcode space is fully assigned, so batched scoring is not
# expressed as new instructions: instead the compiler lowers each hot
# kernel to a *schedule* of packed-word micro-ops — a row-tile loop
# (the same tiling the threaded backend uses, via
# :func:`repro.core.backends.plan_row_tiles`) crossed with word-segment
# ranges — which the ISS executes on a dedicated batch unit.  Running a
# schedule therefore validates both the arithmetic and the tiled
# backend's traversal order against the numpy reference.


@dataclass(frozen=True)
class KernelMicroOp:
    """One packed-word micro-operation over a row tile x word segment.

    ``op`` names the primitive (``"andpop"`` = popcount of the AND with
    the canary words, ``"pop"`` = plain popcount, ``"orpop"`` = popcount
    of the OR).  Rows ``[row0, row1)`` and word columns
    ``[word0, word1)`` bound the operand slice; the per-row partial
    counts accumulate into column ``col`` of output buffer ``out``.
    """

    op: str
    row0: int
    row1: int
    word0: int
    word1: int
    out: str
    col: int = 0


@dataclass(frozen=True)
class BatchKernelSchedule:
    """A compiled batch kernel: metadata plus its micro-op stream.

    ``tiles`` is the row-tile plan the micro-ops were emitted from (the
    outer loop); ``segments`` the word-column ranges (the inner loop);
    ``outputs`` maps each accumulator buffer name to its column count.
    Micro-ops appear in execution order — tile-major, segment-minor —
    so an executor's traversal trace can be compared to the plan.
    """

    kernel: str
    n_rows: int
    n_words: int
    tile_rows: int
    tiles: Tuple[Tuple[int, int], ...]
    segments: Tuple[Tuple[int, int], ...]
    outputs: Tuple[Tuple[str, int], ...]
    micro_ops: Tuple[KernelMicroOp, ...]

    @property
    def num_tiles(self) -> int:
        return len(self.tiles)


def _resolve_tile_rows(
    n_rows: int, n_words: int, tile_rows: Optional[int]
) -> int:
    if tile_rows is None:
        return tile_rows_for(n_rows, n_words * 8)
    if tile_rows < 1:
        raise ValueError("tile_rows must be >= 1")
    return tile_rows


def compile_batch_containment(
    n_rows: int,
    n_words: int,
    tile_rows: Optional[int] = None,
) -> BatchKernelSchedule:
    """Lower the batched containment score ``||A & B|| / ||A||`` to a
    micro-op schedule over an ``(n_rows, n_words)`` packed matrix.

    Each row tile emits an ``andpop`` (numerator) and a ``pop``
    (denominator) over the full word range; ``tile_rows`` defaults to
    the cache-sized tiling of the tiled backend so the schedule walks
    rows in exactly the order that backend does.
    """
    if n_words < 1:
        raise ValueError("n_words must be >= 1")
    tile_rows = _resolve_tile_rows(n_rows, n_words, tile_rows)
    tiles = tuple(plan_row_tiles(n_rows, tile_rows))
    segments = ((0, n_words),)
    micro_ops = []
    for row0, row1 in tiles:
        micro_ops.append(KernelMicroOp(
            "andpop", row0, row1, 0, n_words, out="inter"))
        micro_ops.append(KernelMicroOp(
            "pop", row0, row1, 0, n_words, out="denom"))
    return BatchKernelSchedule(
        kernel="containment",
        n_rows=n_rows,
        n_words=n_words,
        tile_rows=tile_rows,
        tiles=tiles,
        segments=segments,
        outputs=(("inter", 1), ("denom", 1)),
        micro_ops=tuple(micro_ops),
    )


def compile_batch_per_tap(
    n_rows: int,
    n_words: int,
    tap_offsets,
    tile_rows: Optional[int] = None,
) -> BatchKernelSchedule:
    """Lower the per-tap hit-count kernel (the fused
    ``segment_and_popcount``) to a micro-op schedule.

    ``tap_offsets`` are word-column starts as in
    :func:`repro.core.bitmask.segment_popcount`; segment ``k`` covers
    ``[offsets[k], offsets[k+1])`` with the last running to
    ``n_words``.  The schedule is tile-major, segment-minor: one
    ``andpop`` per (tile, non-empty segment) pair accumulating into
    column ``k`` of the ``hits`` buffer, so zero-length segments emit
    no micro-ops and their columns stay 0 — the reference semantics.
    """
    if n_words < 1:
        raise ValueError("n_words must be >= 1")
    offsets = np.asarray(tap_offsets, dtype=np.intp)
    starts, ends = validate_segment_offsets(offsets, n_words)
    segments = tuple(
        (int(w0), int(w1)) for w0, w1 in zip(starts, ends)
    )
    tile_rows = _resolve_tile_rows(n_rows, n_words, tile_rows)
    tiles = tuple(plan_row_tiles(n_rows, tile_rows))
    micro_ops = []
    for row0, row1 in tiles:
        for col, (w0, w1) in enumerate(segments):
            if w0 >= w1:
                continue
            micro_ops.append(KernelMicroOp(
                "andpop", row0, row1, w0, w1, out="hits", col=col))
    return BatchKernelSchedule(
        kernel="per_tap",
        n_rows=n_rows,
        n_words=n_words,
        tile_rows=tile_rows,
        tiles=tiles,
        segments=segments,
        outputs=(("hits", len(segments)),),
        micro_ops=tuple(micro_ops),
    )
