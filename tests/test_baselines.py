"""Baseline-detector tests: EP, CDRP, DeepFense."""

import pytest

from repro.attacks import BIM
from repro.baselines import (
    CDRPDetector,
    DEEPFENSE_VARIANTS,
    DeepFenseDetector,
    EPDetector,
    deepfense_overheads,
    ep_cost,
)
from repro.hw import model_workload


@pytest.fixture(scope="module")
def attack_sets(trained_alexnet, small_dataset):
    atk = BIM(eps=0.08)
    adv_fit = atk.generate(trained_alexnet, small_dataset.x_train[:30],
                           small_dataset.y_train[:30]).x_adv
    adv_eval = atk.generate(trained_alexnet, small_dataset.x_test[:15],
                            small_dataset.y_test[:15]).x_adv
    benign_fit = small_dataset.x_train[30:60]
    benign_eval = small_dataset.x_test[15:30]
    return benign_fit, adv_fit, benign_eval, adv_eval


class TestEP:
    def test_detects_adversaries(self, trained_alexnet, small_dataset,
                                 attack_sets):
        benign_fit, adv_fit, benign_eval, adv_eval = attack_sets
        ep = EPDetector(trained_alexnet, n_trees=40)
        ep.profile(small_dataset.x_train, small_dataset.y_train,
                   max_per_class=15)
        ep.fit_classifier(benign_fit, adv_fit)
        auc = ep.evaluate_auc(benign_eval, adv_eval)
        assert auc > 0.75

    def test_uses_scalar_features(self, trained_alexnet):
        ep = EPDetector(trained_alexnet)
        assert ep.feature_mode == "scalar"

    def test_cost_exceeds_hw_bwcu(self, trained_alexnet, small_dataset):
        """EP runs without the path-constructor hardware; on the same
        workload it must cost at least as much as hardware BwCu
        (Fig. 11 shows EP ~= BwCu or worse)."""
        from repro.compiler import apply_optimizations
        from repro.core import ExtractionConfig, PathExtractor
        from repro.hw import simulate_detection

        trained_alexnet.forward(small_dataset.x_test[:1])
        workload = model_workload(trained_alexnet)
        ep = EPDetector(trained_alexnet)
        trace = PathExtractor(trained_alexnet, ep.config).extract(
            small_dataset.x_test[:1]
        ).trace
        ep_report = ep_cost(workload, ep, trace)
        config = ExtractionConfig.bwcu(8, theta=0.5)
        schedule = apply_optimizations(config, 8)
        hw_report = simulate_detection(workload, config, trace, schedule)
        assert ep_report.latency_overhead >= hw_report.latency_overhead


class TestCDRP:
    def test_routing_path_shape(self, trained_alexnet, small_dataset):
        cdrp = CDRPDetector(trained_alexnet, n_trees=20)
        path = cdrp.routing_path(small_dataset.x_test[:1])
        conv_channels = sum(
            n.module.out_channels
            for n in trained_alexnet.extraction_units()
            if hasattr(n.module, "out_channels")
        )
        assert path.shape == (conv_channels,)
        assert (path >= 0).all() and (path <= 1).all()

    def test_fit_and_score(self, trained_alexnet, attack_sets):
        benign_fit, adv_fit, benign_eval, adv_eval = attack_sets
        cdrp = CDRPDetector(trained_alexnet, n_trees=20)
        cdrp.fit(benign_fit, adv_fit)
        score = cdrp.score(benign_eval[:1])
        assert 0.0 <= score <= 1.0
        auc = cdrp.evaluate_auc(benign_eval, adv_eval)
        assert 0.0 <= auc <= 1.0

    def test_requires_conv_layers(self, trained_mlp):
        with pytest.raises(ValueError):
            CDRPDetector(trained_mlp)

    def test_unfitted_raises(self, trained_alexnet, small_dataset):
        cdrp = CDRPDetector(trained_alexnet)
        with pytest.raises(RuntimeError):
            cdrp.score(small_dataset.x_test[:1])


class TestDeepFense:
    def test_detects_adversaries(self, trained_alexnet, small_dataset,
                                 attack_sets):
        _, _, benign_eval, adv_eval = attack_sets
        df = DeepFenseDetector(trained_alexnet, num_defenders=4, seed=0)
        df.fit(small_dataset.x_train)
        auc = df.evaluate_auc(benign_eval, adv_eval)
        assert auc > 0.6  # redundancy-based detection is weaker (Fig. 12a)

    def test_score_unfitted_raises(self, trained_alexnet, small_dataset):
        df = DeepFenseDetector(trained_alexnet)
        with pytest.raises(RuntimeError):
            df.score(small_dataset.x_test[:1])

    def test_variant_registry(self):
        assert DEEPFENSE_VARIANTS == {"DFL": 1, "DFM": 8, "DFH": 16}

    def test_overhead_scales_with_defenders(self):
        """Modular redundancy: cost grows linearly in defender count."""
        dfl = deepfense_overheads(1)
        dfm = deepfense_overheads(8)
        dfh = deepfense_overheads(16)
        assert dfl["latency_overhead"] < dfm["latency_overhead"] < dfh["latency_overhead"]
        assert dfl["latency_overhead"] == pytest.approx(1.19)

    def test_invalid_defender_count(self):
        with pytest.raises(ValueError):
            deepfense_overheads(0)
