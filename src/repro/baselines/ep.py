"""EP baseline — effective-path defense (Qiu et al., CVPR 2019).

EP profiles per-class *effective paths* (the same class-level sparsity
observation Ptolemy builds on) and detects adversaries from path
similarity, but as a pure software technique: full backward cumulative
extraction over every layer, a scalar similarity feature, and no
hardware support.  Accuracy therefore tracks Ptolemy's BwCu closely
(Fig. 10) while its cost is far higher (Fig. 11) because extraction is
serialized software without the sort/merge hardware.
"""

from __future__ import annotations

from dataclasses import replace


from repro.compiler import apply_optimizations
from repro.core import ExtractionConfig, PtolemyDetector
from repro.hw import DEFAULT_HW, HardwareConfig, simulate_detection
from repro.hw.workload import ModelWorkload
from repro.nn.graph import Graph

__all__ = ["EPDetector", "ep_cost"]


class EPDetector(PtolemyDetector):
    """EP = full-network backward-cumulative profiling with a scalar
    similarity feature (EP has no per-layer feature machinery)."""

    def __init__(self, model: Graph, theta: float = 0.5, n_trees: int = 100,
                 seed: int = 0):
        config = ExtractionConfig.bwcu(
            model.num_extraction_units(), theta=theta
        )
        super().__init__(
            model,
            config,
            feature_mode="scalar",
            n_trees=n_trees,
            seed=seed,
        )


def _software_hw(hw: HardwareConfig) -> HardwareConfig:
    """EP runs without Ptolemy's path-constructor hardware: sorting is
    effectively scalar (one narrow sort 'unit', no merge parallelism)
    and no neuron pipelining applies."""
    return replace(hw, num_sort_units=1, sort_unit_width=2, merge_tree_length=2)


def ep_cost(
    workload: ModelWorkload,
    detector: EPDetector,
    trace,
    hw: HardwareConfig = DEFAULT_HW,
):
    """Latency/energy of EP detection on the same platform: BwCu-style
    extraction with software sorting and no compiler optimisations."""
    schedule = apply_optimizations(
        detector.config,
        detector.config.num_layers,
        layer_pipelining=False,
        neuron_pipelining=False,
        recompute=False,
    )
    return simulate_detection(
        workload, detector.config, trace, schedule, _software_hw(hw)
    )
