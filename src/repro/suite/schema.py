"""The versioned ``ScenarioReport`` JSON schema.

Every scenario the suite runs — any {attack x defense x corruption x
workload x backend} cell — is normalized into one report shape so CI
can diff, gate, and aggregate them uniformly (the HYMET bench-harness
pattern: many runners, one profile format).  The schema is deliberately
plain JSON with stdlib-only validation, because the same checks run in
three places: the suite writer (before anything touches disk), the
``scripts/check_report_schema.py`` CI job, and the perf gate's
``suite`` section.

Report shape (``SCHEMA_VERSION`` 1)::

    {
      "schema_version": 1,
      "scenario_id": "alexnet_imagenet/bim/ptolemy_fwab/none/numpy",
      "config": {"workload": ..., "attack": ..., "defense": ...,
                 "corruption": ..., "backend": ..., ...},
      "config_fingerprint": "<sha256 of the canonical config JSON>",
      "metrics": {"auc": ..., "tpr_at_fpr": ..., "accuracy": ...,
                  "tpr": ..., "fpr": ..., "threshold": ...,
                  "target_fpr": ...},
      "threshold_sweep": [{"threshold": ..., "tpr": ..., "fpr": ...,
                           "accuracy": ...}, ...],
      "timing": {"fit_seconds": ..., "score_seconds": ...,
                 "samples": ..., "samples_per_sec": ...},
      "scores_digest": "sha256:<hex of the raw float64 score bytes>",
      "environment": {"python": ..., "platform": ..., "numpy": ...,
                      "backend": ...}
    }

Extra keys are allowed everywhere (reports may carry scenario-specific
detail, e.g. corruption MSE); the required core above is what CI gates.
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
from typing import Dict, List

__all__ = [
    "SCHEMA_VERSION",
    "config_fingerprint",
    "environment_info",
    "scores_digest",
    "validate_report",
]

SCHEMA_VERSION = 1

#: Required keys per section: ``{section: {key: type}}``.  Floats accept
#: ints too (JSON round-trips may narrow 1.0 -> 1).
_REQUIRED_CONFIG = ("workload", "attack", "defense", "corruption", "backend")
_REQUIRED_METRICS = (
    "auc", "tpr_at_fpr", "accuracy", "tpr", "fpr", "threshold", "target_fpr",
)
_UNIT_METRICS = ("auc", "tpr_at_fpr", "accuracy", "tpr", "fpr")
_REQUIRED_SWEEP_ROW = ("threshold", "tpr", "fpr", "accuracy")
_REQUIRED_TIMING = ("fit_seconds", "score_seconds", "samples",
                    "samples_per_sec")
_REQUIRED_ENVIRONMENT = ("python", "platform", "numpy", "backend")


def config_fingerprint(config: Dict) -> str:
    """Order-independent sha256 over the canonical config JSON."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def scores_digest(raw: bytes) -> str:
    """Digest of the raw score bytes (callers pass
    ``scores.astype(float64).tobytes()`` so bit-identity is exact)."""
    return "sha256:" + hashlib.sha256(raw).hexdigest()


def environment_info(backend: str) -> Dict[str, str]:
    """The environment section: enough to explain a digest mismatch."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - hard dep in-repo  # noqa: BLE001
        numpy_version = "unavailable"
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "numpy": numpy_version,
        "backend": backend,
    }


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_report(report) -> List[str]:
    """Validate one report dict; returns error strings (empty = valid).

    Pure stdlib so ``scripts/check_report_schema.py`` can run it on a
    bare interpreter.
    """
    errors: List[str] = []
    if not isinstance(report, dict):
        return [f"report must be an object, got {type(report).__name__}"]

    version = report.get("schema_version")
    if version != SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {SCHEMA_VERSION}, got {version!r}"
        )

    scenario_id = report.get("scenario_id")
    if not isinstance(scenario_id, str) or not scenario_id:
        errors.append("scenario_id must be a non-empty string")

    config = report.get("config")
    if not isinstance(config, dict):
        errors.append("config must be an object")
    else:
        for key in _REQUIRED_CONFIG:
            if not isinstance(config.get(key), str):
                errors.append(f"config.{key} must be a string")

    fingerprint = report.get("config_fingerprint")
    if not (isinstance(fingerprint, str) and len(fingerprint) == 64):
        errors.append("config_fingerprint must be a 64-char sha256 hex")
    elif isinstance(config, dict) and fingerprint != config_fingerprint(config):
        errors.append("config_fingerprint does not match config contents")

    metrics = report.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("metrics must be an object")
    else:
        for key in _REQUIRED_METRICS:
            if not _is_number(metrics.get(key)):
                errors.append(f"metrics.{key} must be a number")
        for key in _UNIT_METRICS:
            value = metrics.get(key)
            if _is_number(value) and not 0.0 <= value <= 1.0:
                errors.append(f"metrics.{key} must be in [0, 1], got {value}")

    sweep = report.get("threshold_sweep")
    if not isinstance(sweep, list) or not sweep:
        errors.append("threshold_sweep must be a non-empty array")
    else:
        previous = None
        for i, row in enumerate(sweep):
            if not isinstance(row, dict):
                errors.append(f"threshold_sweep[{i}] must be an object")
                continue
            for key in _REQUIRED_SWEEP_ROW:
                if not _is_number(row.get(key)):
                    errors.append(
                        f"threshold_sweep[{i}].{key} must be a number"
                    )
            threshold = row.get("threshold")
            if _is_number(threshold):
                if previous is not None and threshold <= previous:
                    errors.append(
                        "threshold_sweep thresholds must be strictly "
                        f"increasing (row {i})"
                    )
                previous = threshold

    timing = report.get("timing")
    if not isinstance(timing, dict):
        errors.append("timing must be an object")
    else:
        for key in _REQUIRED_TIMING:
            if not _is_number(timing.get(key)):
                errors.append(f"timing.{key} must be a number")
        samples = timing.get("samples")
        if _is_number(samples) and (samples != int(samples) or samples <= 0):
            errors.append(f"timing.samples must be a positive integer, "
                          f"got {samples}")

    digest = report.get("scores_digest")
    if not (isinstance(digest, str) and digest.startswith("sha256:")
            and len(digest) == len("sha256:") + 64):
        errors.append("scores_digest must be 'sha256:' + 64 hex chars")

    environment = report.get("environment")
    if not isinstance(environment, dict):
        errors.append("environment must be an object")
    else:
        for key in _REQUIRED_ENVIRONMENT:
            if not isinstance(environment.get(key), str):
                errors.append(f"environment.{key} must be a string")

    return errors


def example_report() -> Dict:
    """A minimal valid report — the self-test fixture for the CI
    validator (and a living spec for humans)."""
    config = {
        "workload": "alexnet_imagenet",
        "attack": "bim",
        "defense": "ptolemy_fwab",
        "corruption": "none",
        "backend": "numpy",
    }
    return {
        "schema_version": SCHEMA_VERSION,
        "scenario_id": "alexnet_imagenet/bim/ptolemy_fwab/none/numpy",
        "config": config,
        "config_fingerprint": config_fingerprint(config),
        "metrics": {
            "auc": 0.97, "tpr_at_fpr": 0.9, "accuracy": 0.92,
            "tpr": 0.9, "fpr": 0.08, "threshold": 0.55, "target_fpr": 0.1,
        },
        "threshold_sweep": [
            {"threshold": 0.2, "tpr": 1.0, "fpr": 0.6, "accuracy": 0.7},
            {"threshold": 0.5, "tpr": 0.95, "fpr": 0.1, "accuracy": 0.92},
            {"threshold": 0.8, "tpr": 0.4, "fpr": 0.0, "accuracy": 0.7},
        ],
        "timing": {
            "fit_seconds": 1.0, "score_seconds": 0.5,
            "samples": 48, "samples_per_sec": 96.0,
        },
        "scores_digest": "sha256:" + "0" * 64,
        "environment": {
            "python": sys.version.split()[0],
            "platform": "example",
            "numpy": "2.0",
            "backend": "numpy",
        },
    }
