"""repro.core.backends — pluggable compute backends for the hot
packed-word detection kernels.

The batched score path of :class:`~repro.core.detector.PtolemyDetector`
spends essentially all of its kernel time in six primitives
(``batch_or``, ``batch_popcount``, ``batch_and_popcount``,
``batch_containment``, ``batch_jaccard``, ``segment_popcount``).  This
registry makes the implementation of those primitives selectable:

* ``numpy`` — the reference kernels in :mod:`repro.core.bitmask`; the
  bit-identity baseline every other backend is tested against.
* ``tiled`` — cache-sized row tiles on a shared thread pool
  (:mod:`repro.core.backends.tiled`); the multi-core throughput
  backend.
* ``numba`` — optional JIT loop kernels behind a lazy import
  (:mod:`repro.core.backends.numba_backend`); degrades to ``numpy``
  when numba is absent or fails to compile.

Selection precedence (highest wins): an explicit argument (CLI
``--backend`` / ``DetectionEngine(backend=)``), the
``REPRO_KERNEL_BACKEND`` environment variable, then
``ExtractionConfig.backend``, then the ``numpy`` default.  All
backends are bit-identical on scores and decisions — selection is
purely a throughput knob, which is why an env override is safe.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Dict, Optional

from repro.core.backends.base import KernelBackend
from repro.core.backends.numba_backend import NumbaBackend, numba_available
from repro.core.backends.tiled import (
    DEFAULT_TILE_BYTES,
    TiledBackend,
    plan_row_tiles,
    tile_rows_for,
    worker_budget,
)

__all__ = [
    "KERNEL_BACKEND_ENV",
    "KernelBackend",
    "NumbaBackend",
    "TiledBackend",
    "DEFAULT_TILE_BYTES",
    "available_backends",
    "get_backend",
    "numba_available",
    "plan_row_tiles",
    "register_backend",
    "resolve_backend",
    "tile_rows_for",
    "worker_budget",
]

#: Environment override, between explicit arguments and config values
#: in precedence.
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

_FACTORIES: Dict[str, Callable[[], KernelBackend]] = {
    "numpy": KernelBackend,
    "tiled": TiledBackend,
    "numba": NumbaBackend,
}

# Instances are shared per name: the tiled backend owns thread-pool
# state and the numba backend owns compiled kernels, neither of which
# should be rebuilt per detector.
_INSTANCES: Dict[str, KernelBackend] = {}


def register_backend(
    name: str, factory: Callable[[], KernelBackend]
) -> None:
    """Register (or replace) a backend factory under ``name``."""
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> Dict[str, bool]:
    """Registered names mapped to whether they can run natively here
    (``numba`` is registered but unavailable when the JIT is absent)."""
    return {
        name: (name != "numba" or numba_available())
        for name in sorted(_FACTORIES)
    }


def get_backend(name: str) -> KernelBackend:
    """The shared instance for ``name``; raises on unknown names."""
    if name not in _FACTORIES:
        known = ", ".join(sorted(_FACTORIES))
        raise ValueError(f"unknown kernel backend {name!r} (known: {known})")
    if name not in _INSTANCES:
        _INSTANCES[name] = _FACTORIES[name]()
    return _INSTANCES[name]


def resolve_backend(
    name: Optional[str] = None,
    config_backend: Optional[str] = None,
) -> KernelBackend:
    """Resolve the active backend: explicit ``name`` beats the
    ``REPRO_KERNEL_BACKEND`` environment variable beats
    ``config_backend`` beats the ``numpy`` default.

    Requesting ``numba`` on a host without numba resolves to the numpy
    reference (with a warning) instead of failing — backend choice may
    never change results, so it may never break startup either.
    """
    choice = name or os.environ.get(KERNEL_BACKEND_ENV) or config_backend
    if not choice:
        choice = "numpy"
    if choice == "numba" and not numba_available():
        warnings.warn(
            "kernel backend 'numba' requested but numba is not "
            "importable; falling back to the numpy reference backend",
            RuntimeWarning,
            stacklevel=2,
        )
        return get_backend("numpy")
    return get_backend(choice)
