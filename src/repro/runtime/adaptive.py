"""Adaptive, SLO-aware micro-batch sizing.

The fixed :class:`~repro.runtime.batching.MicroBatcher` trades latency
for throughput at a size chosen offline; under real traffic the right
size moves with load, model, and machine.  :class:`AdaptiveBatcher` is
the online replacement: it watches per-batch wall-clock latencies (the
same numbers :class:`~repro.runtime.stats.ThroughputStats` records) and
steers the micro-batch size so the p95 batch latency stays under a
configured service-level objective while packing batches as large as
the budget allows — larger batches amortise per-call overhead, so
"largest size that still meets the SLO" is also the throughput
optimum.

Control law (deterministic, O(1) per observation):

* Fit a per-sample latency estimate as the median of
  ``seconds / batch_size`` over a sliding window (median, so one
  scheduler hiccup cannot poison the model).
* Aim for ``headroom * slo`` (default 80% of budget) and derive the
  candidate size ``target_seconds / per_sample_seconds``.
* Move toward the candidate multiplicatively — at most ``growth`` (x)
  up per step, and on an observed SLO violation cut by ``shrink``
  immediately (AIMD-style: cautious up, fast down).
* Clamp to ``[min_batch, max_batch]``.

Batch size never changes *decisions*: the packed-word kernels are
bit-identical across batch sizes (``tests/test_batch_equivalence.py``),
so adaptivity is purely a latency/throughput decision, exactly like
fixed batching.

The class also implements the MicroBatcher surface (``add`` /
``flush`` / ``pending``) with a *dynamic* fill threshold, so it drops
into :class:`~repro.runtime.engine.DetectionEngine`'s streaming
front-end unchanged.
"""

from __future__ import annotations

import statistics
import threading
from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

__all__ = ["AdaptiveBatcher"]


class AdaptiveBatcher:
    """Latency-SLO-driven micro-batch sizing with a MicroBatcher surface.

    Parameters
    ----------
    slo_ms:
        Per-batch latency objective in milliseconds.  The controller
        keeps observed batch latencies (and therefore their p95) under
        this budget while growing batches as large as it allows.
    min_batch / max_batch:
        Hard clamp on the chosen size.  ``max_batch`` doubles as the
        throughput ceiling — the controller converges to it when the
        SLO is loose.
    initial_batch:
        Starting size before any observation (default: 8, clamped).
        Starting small keeps the first batches comfortably inside the
        budget on unknown hardware.
    window:
        Observations kept for the per-sample latency model and the
        violation statistics.
    headroom:
        Fraction of the SLO actually targeted (default 0.8), so p95
        noise around the operating point stays inside the budget.
    growth / shrink:
        Multiplicative step limits: at most ``growth``x up per
        observation; cut to ``shrink``x immediately on a violation.

    Thread safety: ``observe`` and the size read are lock-protected —
    the sharded service observes from its collector thread while its
    submit path reads the size.
    """

    def __init__(
        self,
        slo_ms: float,
        *,
        min_batch: int = 1,
        max_batch: int = 512,
        initial_batch: Optional[int] = None,
        window: int = 32,
        headroom: float = 0.8,
        growth: float = 1.3,
        shrink: float = 0.5,
    ):
        if slo_ms <= 0:
            raise ValueError("slo_ms must be positive")
        if min_batch < 1:
            raise ValueError("min_batch must be positive")
        if max_batch < min_batch:
            raise ValueError("max_batch must be >= min_batch")
        if window < 1:
            raise ValueError("window must be positive")
        if not 0.0 < headroom <= 1.0:
            raise ValueError("headroom must be in (0, 1]")
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        if not 0.0 < shrink < 1.0:
            raise ValueError("shrink must be in (0, 1)")
        self.slo_ms = float(slo_ms)
        self.min_batch = int(min_batch)
        self.max_batch = int(max_batch)
        self.window = int(window)
        self.headroom = float(headroom)
        self.growth = float(growth)
        self.shrink = float(shrink)
        if initial_batch is None:
            initial_batch = 8
        self._batch_size = int(np.clip(initial_batch, min_batch, max_batch))
        self._observed: Deque[Tuple[int, float]] = deque(maxlen=self.window)
        self.observations = 0
        self.violations = 0
        self._lock = threading.Lock()
        self._pending: List[np.ndarray] = []

    # -- controller -----------------------------------------------------
    @property
    def batch_size(self) -> int:
        """The size the next micro-batch should use."""
        with self._lock:
            return self._batch_size

    def observe(self, batch_size: int, seconds: float) -> int:
        """Account one processed batch; returns the updated size.

        Call with the same ``(len(batch), seconds)`` the stats layer
        records.  Non-positive sizes are ignored (nothing to learn
        from); negative durations are clamped to zero.
        """
        if batch_size < 1:
            return self.batch_size
        seconds = max(0.0, float(seconds))
        slo_seconds = self.slo_ms / 1e3
        with self._lock:
            self.observations += 1
            self._observed.append((int(batch_size), seconds))
            if seconds > slo_seconds:
                self.violations += 1
            per_sample = statistics.median(
                s / n for n, s in self._observed
            )
            target_seconds = slo_seconds * self.headroom
            if per_sample <= 0.0:
                candidate = float(self.max_batch)
            else:
                candidate = target_seconds / per_sample
            current = float(self._batch_size)
            if seconds > slo_seconds:
                stepped = int(round(min(candidate, current * self.shrink)))
            else:
                # Ceil the growth step so small sizes always make
                # progress — round(1 * 1.3) would pin the floor forever
                # — but never past the candidate's integer floor, the
                # largest size the latency budget actually supports.
                budget_cap = max(int(candidate), self.min_batch)
                stepped = min(
                    int(np.ceil(current * self.growth)), budget_cap
                )
            self._batch_size = int(
                np.clip(stepped, self.min_batch, self.max_batch)
            )
            return self._batch_size

    def p95_ms(self) -> float:
        """Windowed p95 of observed batch latencies, in milliseconds."""
        with self._lock:
            if not self._observed:
                return 0.0
            lat = np.asarray([s for _, s in self._observed])
        return float(np.percentile(lat, 95.0)) * 1e3

    def per_sample_ms(self) -> float:
        """Current per-sample latency estimate, in milliseconds."""
        with self._lock:
            if not self._observed:
                return 0.0
            return statistics.median(
                s / n for n, s in self._observed
            ) * 1e3

    def snapshot(self) -> dict:
        """JSON-safe controller state (what ``/v1/stats`` reports)."""
        with self._lock:
            batch_size = self._batch_size
            observations = self.observations
            violations = self.violations
        return {
            "slo_ms": self.slo_ms,
            "batch_size": batch_size,
            "min_batch": self.min_batch,
            "max_batch": self.max_batch,
            "observations": observations,
            "violations": violations,
            "p95_ms": self.p95_ms(),
            "per_sample_ms": self.per_sample_ms(),
        }

    # -- MicroBatcher surface -------------------------------------------
    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> int:
        return len(self._pending)

    def add(self, sample: np.ndarray) -> Optional[np.ndarray]:
        """Buffer one sample; return a batch when the *current* target
        size fills (the threshold moves with the controller)."""
        sample = np.asarray(sample)
        if self._pending and sample.shape != self._pending[0].shape:
            raise ValueError(
                f"sample shape {sample.shape} does not match pending "
                f"batch shape {self._pending[0].shape}"
            )
        self._pending.append(sample)
        if len(self._pending) >= self.batch_size:
            return self.flush()
        return None

    def flush(self) -> Optional[np.ndarray]:
        """Drain the buffer as one (possibly short) batch.

        The buffer is reset even if stacking fails, so a downstream
        rejection can never leave stale samples behind (the same
        contract as :meth:`MicroBatcher.flush`).
        """
        if not self._pending:
            return None
        try:
            return np.stack(self._pending)
        finally:
            self._pending = []

    def iter_chunks(self, xs: np.ndarray):
        """Yield slices of an ``(N, ...)`` array at the adaptive size.

        The size is re-read per chunk, so observations arriving while a
        workload drains (e.g. from the engine processing the previous
        chunk) steer the remaining splits.  Slices are views.
        """
        start = 0
        while start < len(xs):
            size = self.batch_size
            yield xs[start : start + size]
            start += size
