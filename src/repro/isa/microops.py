"""Micro-op decomposition and in-order timing of detection programs.

The Ptolemy ISA is CISC-like: each instruction "will be decomposed by
micro-instructions controlled by an FSM" (Sec. IV-A), and the hardware
stays in-order but "would still have the logic to check dependencies
and stall the pipeline if necessary" (Sec. IV-B).  This module models
exactly that machinery:

* :class:`TimedMachine` executes a program *functionally* (inheriting
  the ISS semantics) while recording, per dynamic instruction, the
  micro-ops the FSM would sequence — with concrete lengths/addresses,
  because decomposition happens at execute time when operand registers
  hold real values;
* :func:`schedule` plays the micro-op stream through an in-order
  scoreboard: issue is program-ordered, but a micro-op only *starts*
  once its register and memory-region dependencies have resolved and
  its functional unit is free.  Independent instructions on different
  units therefore overlap — which is how the compiler's neuron-level
  pipelining (sort(i+1) under acum(i), Fig. 7b) buys its speedup.

The result is a cycle estimate for the *path-construction side* of
detection that is grounded in the dynamic instruction stream, used by
the micro-architecture benchmarks to cross-check the analytical
simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hw.config import DEFAULT_HW, HardwareConfig
from repro.hw import path_constructor as pc
from repro.isa.encoding import Instruction, Opcode
from repro.isa.machine import Machine
from repro.isa.program import Program

__all__ = [
    "MicroOp",
    "InstrTiming",
    "TimedMachine",
    "ScheduleResult",
    "schedule",
    "time_program",
]

#: Functional units a micro-op can occupy.
UNITS = ("mcu", "pe", "sort", "merge", "acum", "maskgen", "simd", "dma")


@dataclass(frozen=True)
class MicroOp:
    """One FSM step: a unit occupied for some cycles, with the register
    and memory-region sets the scoreboard needs."""

    unit: str
    cycles: int
    reads_regs: Tuple[int, ...] = ()
    writes_regs: Tuple[int, ...] = ()
    reads_mem: Tuple[Tuple[int, int], ...] = ()   # (start, length) regions
    writes_mem: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self):
        if self.unit not in UNITS:
            raise ValueError(f"unknown unit {self.unit!r}")
        if self.cycles < 0:
            raise ValueError("cycles must be non-negative")


@dataclass
class InstrTiming:
    """The micro-ops of one dynamic instruction."""

    index: int               # dynamic instruction number
    opcode: Opcode
    uops: List[MicroOp]

    @property
    def cycles(self) -> int:
        return sum(u.cycles for u in self.uops)


class TimedMachine(Machine):
    """ISS that records the FSM micro-op stream while executing.

    ``layer_cycles`` supplies the accelerator cycles of each ``inf`` /
    ``infsp`` in program order (the PE-array side is modelled by
    :mod:`repro.hw.accelerator`; this machine times everything else).
    """

    def __init__(
        self,
        memory_words: int = 1 << 18,
        adapter=None,
        hw: HardwareConfig = DEFAULT_HW,
        layer_cycles: Optional[Sequence[int]] = None,
    ):
        super().__init__(memory_words, adapter)
        self.hw = hw
        self.layer_cycles = list(layer_cycles or [])
        self.timings: List[InstrTiming] = []
        self._inference_count = 0

    # -- hook -------------------------------------------------------------
    def _execute(self, instr: Instruction) -> None:
        uops = self._decompose_pre(instr)
        before = self._capture_pre_state(instr)
        super()._execute(instr)
        uops.extend(self._decompose_post(instr, before))
        self.timings.append(
            InstrTiming(len(self.timings), instr.opcode, uops)
        )

    # -- decomposition ------------------------------------------------------
    def _capture_pre_state(self, instr: Instruction) -> dict:
        """State needed to size data-dependent uops after execution."""
        op = instr.opcode
        if op is Opcode.ACUM:
            dst = int(self.regs[instr.operands[1]])
            return {"dst": dst, "count_before": int(self.memory[dst])}
        if op is Opcode.GENMASKS:
            src = int(self.regs[instr.operands[0]])
            return {"n_indices": int(self.memory[src])}
        return {}

    def _decompose_pre(self, instr: Instruction) -> List[MicroOp]:
        """Micro-ops that can be sized from pre-execution state."""
        op = instr.opcode
        ops = instr.operands
        hw = self.hw
        if op in (Opcode.MOV, Opcode.MOVR, Opcode.DEC, Opcode.ADD):
            writes = (ops[0],)
            reads = tuple(ops[1:]) if op is not Opcode.MOV else ()
            return [MicroOp("mcu", 1, reads_regs=reads, writes_regs=writes)]
        if op is Opcode.JNE:
            return [MicroOp("mcu", 1)]
        if op is Opcode.HALT:
            return [MicroOp("mcu", 1)]
        if op is Opcode.MUL:
            addr = int(self.regs[ops[1]])
            return [
                MicroOp(
                    "mcu", 2,
                    reads_regs=(ops[0], ops[1]),
                    writes_regs=(ops[0],),
                    reads_mem=((addr, 1),),
                )
            ]
        if op in (Opcode.FINDNEURON, Opcode.FINDRF):
            writes = (ops[-1],)
            return [
                MicroOp("mcu", 2, reads_regs=tuple(ops[:-1]), writes_regs=writes)
            ]
        if op in (Opcode.INF, Opcode.INFSP):
            cycles = (
                self.layer_cycles[self._inference_count]
                if self._inference_count < len(self.layer_cycles)
                else 0
            )
            self._inference_count += 1
            return [MicroOp("pe", cycles, reads_regs=tuple(ops))]
        if op is Opcode.CSPS:
            dst = int(self.regs[ops[2]])
            # recompute on the first PE row only (Sec. V-B): the row's
            # columns work one receptive field in parallel
            rf = self._csps_rf_size(ops)
            cycles = max(1, math.ceil(rf / hw.array_cols))
            return [
                MicroOp(
                    "pe", cycles,
                    reads_regs=tuple(ops),
                    writes_mem=((dst, 2 * rf + 1),),
                )
            ]
        if op is Opcode.SORT:
            src = int(self.regs[ops[0]])
            dst = int(self.regs[ops[2]])
            count = int(self.memory[src])
            region = 2 * count + 1
            chunks = math.ceil(count / hw.sort_unit_width) if count else 0
            passes = math.ceil(chunks / hw.num_sort_units) if chunks else 0
            sort_cyc = passes * hw.sort_network_stages
            merge_cyc = max(0, pc.sort_cycles(count, hw) - sort_cyc)
            uops = [
                MicroOp(
                    "sort", sort_cyc,
                    reads_regs=tuple(ops),
                    reads_mem=((src, region),),
                )
            ]
            uops.append(
                MicroOp(
                    "merge", merge_cyc,
                    writes_mem=((dst, region),),
                )
            )
            return uops
        if op is Opcode.CLS:
            cp = int(self.regs[ops[0]])
            ap = int(self.regs[ops[1]])
            length = int(self.memory[cp])
            cycles = pc.similarity_cycles(length, hw)
            return [
                MicroOp(
                    "simd", max(1, cycles),
                    reads_regs=(ops[0], ops[1]),
                    writes_regs=(ops[2],),
                    reads_mem=((cp, length + 1), (ap, length)),
                )
            ]
        return []

    def _decompose_post(self, instr: Instruction, before: dict) -> List[MicroOp]:
        """Micro-ops whose size depends on what the instruction did."""
        op = instr.opcode
        ops = instr.operands
        if op is Opcode.ACUM:
            src = int(self.regs[ops[0]])
            dst = before["dst"]
            appended = int(self.memory[dst]) - before["count_before"]
            count = int(self.memory[src])
            return [
                MicroOp(
                    "acum", max(1, appended),
                    reads_regs=tuple(ops),
                    reads_mem=((src, 2 * count + 1),),
                    writes_mem=((dst, int(self.memory[dst]) + 1),),
                )
            ]
        if op is Opcode.GENMASKS:
            src = int(self.regs[ops[0]])
            dst = int(self.regs[ops[1]])
            n = before["n_indices"]
            cycles = max(1, math.ceil(n / max(1, self.hw.mask_popcount_bits // 8)))
            return [
                MicroOp(
                    "maskgen", cycles,
                    reads_regs=tuple(ops),
                    reads_mem=((src, n + 1),),
                    writes_mem=((dst, 1),),  # sparse scatter; see schedule()
                )
            ]
        return []

    def _csps_rf_size(self, ops) -> int:
        """Receptive-field size for a csps, via the adapter when
        available (the adapter knows layer geometry)."""
        if self.adapter is not None and hasattr(self.adapter, "rf_size"):
            return int(self.adapter.rf_size(int(self.regs[ops[1]])))
        return self.hw.sort_unit_width  # conservative floor


@dataclass
class ScheduleResult:
    """Outcome of playing a micro-op stream through the scoreboard."""

    total_cycles: int
    busy_cycles: Dict[str, int]
    stall_cycles: int
    instructions: int

    def utilization(self, unit: str) -> float:
        return (
            self.busy_cycles.get(unit, 0) / self.total_cycles
            if self.total_cycles
            else 0.0
        )


def _overlaps(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
    return a[0] < b[0] + b[1] and b[0] < a[0] + a[1]


def schedule(
    timings: Sequence[InstrTiming],
    in_order_issue: bool = True,
) -> ScheduleResult:
    """In-order scoreboard over the dynamic micro-op stream.

    Issue is program-ordered (1 dispatch/cycle); a micro-op starts at
    the latest of (a) its issue slot, (b) its register and memory
    dependencies resolving, and (c) its functional unit going free.
    With ``in_order_issue=False`` constraint (a) is dropped, giving the
    dataflow limit — the gap between the two is the cost of staying
    in-order, which the paper accepts to avoid OoO scheduling logic.
    """
    reg_ready = [0] * 16
    unit_free: Dict[str, int] = {u: 0 for u in UNITS}
    mem_writes: List[Tuple[Tuple[int, int], int]] = []  # (region, done)
    mem_reads: List[Tuple[Tuple[int, int], int]] = []
    issue_floor = 0      # dispatch slot: one instruction per cycle
    dispatch_time = 0    # when the previous instruction actually started
    finish = 0
    busy: Dict[str, int] = {u: 0 for u in UNITS}
    stalls = 0
    for timing in timings:
        uop_chain_ready = issue_floor
        if in_order_issue:
            # in-order: an instruction cannot start before its
            # predecessor started (it may still finish earlier)
            uop_chain_ready = max(uop_chain_ready, dispatch_time)
        first_uop = True
        for uop in timing.uops:
            earliest = uop_chain_ready
            for r in uop.reads_regs:
                earliest = max(earliest, reg_ready[r])
            for r in uop.writes_regs:
                earliest = max(earliest, reg_ready[r])
            for region in uop.reads_mem:
                for other, done in mem_writes:
                    if _overlaps(region, other):
                        earliest = max(earliest, done)
            for region in uop.writes_mem:
                for other, done in mem_writes:
                    if _overlaps(region, other):
                        earliest = max(earliest, done)
                for other, done in mem_reads:
                    if _overlaps(region, other):
                        earliest = max(earliest, done)
            start = max(earliest, unit_free[uop.unit])
            stalls += start - uop_chain_ready
            if first_uop:
                dispatch_time = start
                first_uop = False
            end = start + uop.cycles
            unit_free[uop.unit] = end
            busy[uop.unit] += uop.cycles
            for r in uop.writes_regs:
                reg_ready[r] = end
            for region in uop.writes_mem:
                mem_writes.append((region, end))
            for region in uop.reads_mem:
                mem_reads.append((region, end))
            uop_chain_ready = end
            finish = max(finish, end)
        if in_order_issue:
            issue_floor += 1  # one dispatch slot per instruction
        # prune resolved records: nothing can start before issue_floor
        mem_writes = [(r, d) for r, d in mem_writes if d > issue_floor]
        mem_reads = [(r, d) for r, d in mem_reads if d > issue_floor]
    return ScheduleResult(
        total_cycles=finish,
        busy_cycles={u: c for u, c in busy.items() if c},
        stall_cycles=stalls,
        instructions=len(timings),
    )


def time_program(
    program: Program,
    adapter=None,
    hw: HardwareConfig = DEFAULT_HW,
    layer_cycles: Optional[Sequence[int]] = None,
    memory_words: int = 1 << 18,
) -> Tuple[TimedMachine, ScheduleResult]:
    """Run ``program`` on a :class:`TimedMachine` and schedule its
    micro-op stream; returns (machine, schedule result)."""
    machine = TimedMachine(
        memory_words=memory_words,
        adapter=adapter,
        hw=hw,
        layer_cycles=layer_cycles,
    )
    machine.run(program)
    return machine, schedule(machine.timings)
