"""Extension — integrating Ptolemy with adversarial retraining (Sec. VIII).

The paper: "Ptolemy can also be integrated with adversarial
retraining."  Retraining hardens the model (more adversarial inputs
classified correctly) but cannot *flag* the ones that still slip
through; Ptolemy flags suspect inputs but does not fix the
prediction.  This bench quantifies the composition on a fresh model:

1. adversarial retraining raises robust accuracy over the baseline;
2. re-profiling Ptolemy on the retrained model keeps detection alive
   (class paths change when weights change, so re-profiling is the
   integration step);
3. the combined defense (correctly classified OR flagged) covers more
   adversarial inputs than either component alone.
"""

from repro.attacks import FGSM
from repro.core import ExtractionConfig, PtolemyDetector, calibrate_phi
from repro.data import make_imagenet_like
from repro.defenses import (
    AdversarialTrainConfig,
    adversarial_retrain,
    evaluate_combined_defense,
    robust_accuracy,
)
from repro.eval import render_table
from repro.nn import TrainConfig, build_mini_alexnet, train_classifier

ATTACK = FGSM(eps=0.10)


def _run():
    dataset = make_imagenet_like(
        num_classes=5, train_per_class=30, test_per_class=20, seed=21
    )
    model = build_mini_alexnet(num_classes=5, seed=21)
    train_classifier(
        model, dataset.x_train, dataset.y_train, TrainConfig(epochs=8, seed=21)
    )
    x_eval = dataset.x_test[:30]
    y_eval = dataset.y_test[:30]
    benign = dataset.x_test[30:60]
    benign_fit = dataset.x_test[60:90]

    robust_before = robust_accuracy(model, x_eval, y_eval, ATTACK)
    history = adversarial_retrain(
        model,
        dataset.x_train,
        dataset.y_train,
        ATTACK,
        AdversarialTrainConfig(epochs=4, adv_fraction=0.5, seed=21),
    )
    robust_after = robust_accuracy(model, x_eval, y_eval, ATTACK)

    # Integration step: the retrained weights define new class paths,
    # so the detector is profiled and fitted against the new model.
    config = calibrate_phi(
        model,
        ExtractionConfig.fwab(model.num_extraction_units()),
        dataset.x_train[:4],
        quantile=0.95,
    )
    detector = PtolemyDetector(model, config, n_trees=60, seed=21)
    detector.profile(dataset.x_train, dataset.y_train, max_per_class=20)
    # The paper defines an adversarial sample as one that changes the
    # prediction; against the hardened model many attempts fail and are
    # effectively benign, so only *successful* attacks carry the
    # adversarial label during classifier fitting.
    fit_attempt = ATTACK.generate(
        model, dataset.x_train[:90], dataset.y_train[:90]
    )
    fit_adv = fit_attempt.x_adv[fit_attempt.success]
    detector.fit_classifier(benign_fit, fit_adv)

    # Evaluate over all attack *attempts*: retraining's contribution is
    # the attempts it converts into correct predictions, Ptolemy's is
    # the surviving adversarial samples it flags.
    adv_eval = ATTACK.generate(model, x_eval, y_eval).x_adv
    report = evaluate_combined_defense(
        model, detector, adv_eval, y_eval, benign
    )
    return robust_before, robust_after, history, report


def test_ext_adversarial_retraining(benchmark):
    robust_before, robust_after, history, report = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    print()
    print(render_table(
        "Extension (Sec VIII): Ptolemy + adversarial retraining "
        "(MiniAlexNet, FGSM eps=0.10)",
        ["quantity", "value"],
        [
            ("robust accuracy, baseline model", f"{robust_before:.3f}"),
            ("robust accuracy, retrained model", f"{robust_after:.3f}"),
            ("final clean accuracy (retraining)",
             f"{history.final_clean_accuracy:.3f}"),
            ("adversarial handled: retrained model alone",
             f"{report.model_correct_rate:.3f}"),
            ("adversarial handled: Ptolemy flag alone",
             f"{report.detector_flag_rate:.3f}"),
            ("adversarial handled: combined",
             f"{report.handled_combined:.3f}"),
            ("benign false-alarm rate",
             f"{report.benign_false_alarm_rate:.3f}"),
        ],
    ))
    # (1) retraining hardens the model.
    assert robust_after > robust_before
    # (2) detection stays alive after re-profiling on the new weights.
    assert report.detector_flag_rate > 0.1
    # (3) the composition dominates both components.
    assert report.handled_combined >= report.model_correct_rate
    assert report.handled_combined >= report.detector_flag_rate
    assert report.handled_combined > 0.6
    # The detector still passes most benign traffic.
    assert report.benign_false_alarm_rate < 0.5
