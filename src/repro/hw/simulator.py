"""Top-level cycle/energy simulator for detection-augmented inference.

Combines the accelerator, path-constructor, memory and controller
models with a measured :class:`~repro.core.trace.ExtractionTrace` and a
compiled :class:`~repro.compiler.passes.Schedule` into one
:class:`DetectionCost` whose headline numbers are the paper's
latency/energy overheads normalised to plain inference.

Overlap modelling:

* **Backward** extraction serialises after inference (paths can only
  start from the predicted class, Sec. III-B): latency = inference +
  sum of per-unit extraction, plus DMA stalls when cumulative psums
  are stored rather than recomputed.
* **Forward + layer pipelining** (Fig. 7a) uses the classic pipeline
  recurrence: extraction of layer j starts once inference of layer j
  and extraction of layer j-1 are both done.
* **Neuron pipelining** (Fig. 7b) makes a unit's extraction time the
  max of its stage totals (csps / sort / acum) instead of their sum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compiler.passes import Schedule
from repro.core.config import Direction, ExtractionConfig, Thresholding
from repro.core.trace import ExtractionTrace, UnitTrace
from repro.hw.accelerator import InferenceCost, inference_cost, recompute_cycles
from repro.hw.config import DEFAULT_HW, HardwareConfig
from repro.hw.controller import controller_cost
from repro.hw.memory import DramFootprint, detection_dram_footprint
from repro.hw import path_constructor as pc
from repro.hw.workload import ModelWorkload

__all__ = ["UnitCost", "DetectionCost", "simulate_detection"]


@dataclass(frozen=True)
class UnitCost:
    """Extraction cost of one unit."""

    index: int
    cycles: int
    energy_pj: float


@dataclass
class DetectionCost:
    """Full detection-augmented inference cost."""

    inference_cycles: int
    inference_energy_pj: float
    unit_costs: List[UnitCost] = field(default_factory=list)
    classifier_cycles: int = 0
    classifier_energy_pj: float = 0
    total_cycles: int = 0
    total_energy_pj: float = 0.0
    dram: Optional[DramFootprint] = None

    @property
    def extraction_cycles(self) -> int:
        return sum(u.cycles for u in self.unit_costs)

    @property
    def latency_overhead(self) -> float:
        """Total latency normalised to plain inference (>= 1.0)."""
        return self.total_cycles / self.inference_cycles

    @property
    def energy_overhead(self) -> float:
        return self.total_energy_pj / self.inference_energy_pj

    def summary(self) -> str:
        return (
            f"latency {self.latency_overhead:.2f}x, "
            f"energy {self.energy_overhead:.2f}x, "
            f"extra DRAM {self.dram.space_bytes / 1024:.1f} KiB"
            if self.dram
            else f"latency {self.latency_overhead:.2f}x"
        )


def _unit_extraction_cost(
    unit: UnitTrace,
    spec_mechanism: Thresholding,
    direction: Direction,
    schedule: Schedule,
    hw: HardwareConfig,
) -> UnitCost:
    """Cycles/energy for one unit's extraction work."""
    energy = 0.0
    csps_total = 0
    sort_total = 0
    acum_total = 0
    other = 0
    if direction is Direction.BACKWARD:
        if spec_mechanism is Thresholding.CUMULATIVE:
            per_sort = pc.sort_cycles(unit.rf_size, hw)
            sort_total = unit.n_out_processed * per_sort
            acum_total = pc.acum_cycles(unit.n_important)
            acum_total += unit.n_out_processed  # per-neuron setup
            energy += unit.n_out_processed * pc.sort_energy_pj(unit.rf_size, hw)
            energy += pc.acum_energy_pj(acum_total, hw)
            if schedule.recompute:
                csps_total = recompute_cycles(
                    unit.n_out_processed, unit.rf_size, hw
                )
                energy += unit.n_out_processed * unit.rf_size * hw.energy.mac
            else:
                # stream stored psums back from DRAM
                words = unit.n_out_processed * unit.rf_size
                csps_total = math.ceil(
                    words * hw.word_bytes / hw.dram_bytes_per_cycle
                )
                energy += words * (hw.energy.dram_word + hw.energy.sram_word)
        else:  # backward absolute: read back per-psum mask bits
            bits = unit.n_out_processed * unit.rf_size
            other = pc.mask_cycles(bits, hw)
            energy += bits * hw.energy.mask_bit
            # mask store/load DRAM traffic is accounted in DramFootprint
    else:
        values = unit.out_size
        if spec_mechanism is Thresholding.CUMULATIVE:
            sort_total = pc.sort_cycles(values, hw)
            acum_total = pc.acum_cycles(unit.n_important)
            energy += pc.sort_energy_pj(values, hw)
            energy += pc.acum_energy_pj(unit.n_important, hw)
        else:
            # comparisons happen inside the MAC array during inference;
            # the constructor only streams the resulting mask
            other = pc.mask_cycles(values, hw)
            energy += values * hw.energy.compare
    # mask generation for the tap
    tap_bits = unit.in_size if direction is Direction.BACKWARD else unit.out_size
    other += pc.mask_cycles(unit.n_important, hw)
    energy += pc.mask_energy_pj(tap_bits, hw)

    if schedule.neuron_pipelined and (csps_total or sort_total or acum_total):
        stages = [csps_total, sort_total, acum_total]
        pipeline = max(stages) + min(s for s in stages if s >= 0)
        cycles = pipeline + other
    else:
        cycles = csps_total + sort_total + acum_total + other
    return UnitCost(unit.index, int(cycles), energy)


def simulate_detection(
    workload: ModelWorkload,
    config: ExtractionConfig,
    trace: ExtractionTrace,
    schedule: Schedule,
    hw: HardwareConfig = DEFAULT_HW,
    include_classifier_latency: bool = False,
) -> DetectionCost:
    """Simulate one detection-augmented inference.

    The MCU classifier runs concurrently with the accelerator's next
    inference and the paper attributes <0.1% of detection cost to it
    (Sec. III-B), so its cycles are excluded from the latency path by
    default (its energy is always counted).
    """
    base = inference_cost(workload, hw)
    cost = DetectionCost(
        inference_cycles=base.cycles, inference_energy_pj=base.energy_pj
    )
    dram = detection_dram_footprint(
        workload, config, trace, hw, schedule.recompute
    )
    cost.dram = dram

    # per-unit extraction costs
    unit_costs: Dict[int, UnitCost] = {}
    inference_compare_energy = 0.0
    for unit in trace.units:
        spec = config.layers[unit.index]
        unit_costs[unit.index] = _unit_extraction_cost(
            unit, spec.mechanism, config.direction, schedule, hw
        )
        if spec.mechanism is Thresholding.ABSOLUTE:
            # augmented-MAC comparator: one compare per partial sum for
            # backward thresholds, one per output element for forward
            layer = workload.layer(unit.index)
            compares = (
                layer.psum_count
                if config.direction is Direction.BACKWARD
                else layer.out_words
            )
            inference_compare_energy += compares * hw.energy.compare
    cost.unit_costs = [unit_costs[i] for i in sorted(unit_costs)]

    # latency composition
    extraction_total = sum(u.cycles for u in cost.unit_costs)
    if config.direction is Direction.BACKWARD:
        # psum/mask store traffic competes with inference DMA
        stall = math.ceil(dram.write_bytes / hw.dram_bytes_per_cycle)
        latency = base.cycles + stall + extraction_total
    else:
        if schedule.layer_pipelined:
            latency = _pipelined_latency(base, cost.unit_costs)
        else:
            latency = base.cycles + extraction_total

    # similarity + classifier (controller)
    path_bits = sum(
        workload.layer(i).in_words
        if config.direction is Direction.BACKWARD
        else workload.layer(i).out_words
        for i in config.extracted_indices()
    )
    sim_cycles = pc.similarity_cycles(path_bits, hw)
    sim_energy = pc.similarity_energy_pj(path_bits, hw)
    ctrl = controller_cost(hw)
    cost.classifier_cycles = sim_cycles + ctrl.cycles
    cost.classifier_energy_pj = sim_energy + ctrl.energy_pj

    cost.total_cycles = int(
        latency + (cost.classifier_cycles if include_classifier_latency else 0)
    )
    cost.total_energy_pj = (
        base.energy_pj
        + sum(u.energy_pj for u in cost.unit_costs)
        + inference_compare_energy
        + dram.traffic_bytes / hw.word_bytes * hw.energy.dram_word
        + cost.classifier_energy_pj
    )
    return cost


def _pipelined_latency(base: InferenceCost, unit_costs: List[UnitCost]) -> int:
    """Fig. 7a pipeline recurrence: extraction of unit j starts after
    inference of unit j and extraction of unit j-1 both finish."""
    ext = {u.index: u.cycles for u in unit_costs}
    inf_end = 0
    ext_end = 0
    for j, layer in enumerate(base.layers):
        inf_end += layer.cycles
        if j in ext:
            ext_end = max(inf_end, ext_end) + ext[j]
    return max(inf_end, ext_end)
