"""Important-neuron extraction (the paper's Sec. III algorithm).

Backward extraction starts from the predicted class in the last layer
and walks the network in reverse: for each important output neuron the
minimal set of receptive-field inputs covering ``theta`` of its value
(cumulative), or all inputs whose partial sum exceeds ``phi``
(absolute), becomes important in turn (Fig. 3).

Forward extraction instead selects important neurons per layer from
the layer's own output values the moment the layer finishes, which is
what lets the hardware overlap extraction with inference (Sec. III-C).

The extractor operates on a single input (batch of one) and returns
both the :class:`~repro.core.path.ActivationPath` and an
:class:`~repro.core.trace.ExtractionTrace` of operation counts for the
hardware model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.bitmask import Bitmask
from repro.core.config import Direction, ExtractionConfig, LayerSpec, Thresholding
from repro.core.path import ActivationPath, PackedPathBatch, PathLayout
from repro.core.trace import ExtractionTrace, UnitTrace
from repro.nn.graph import Graph, INPUT

__all__ = [
    "ExtractionResult",
    "BatchExtractionResult",
    "PathExtractor",
    "calibrate_phi",
]


@dataclass
class ExtractionResult:
    """Output of one online extraction."""

    path: ActivationPath
    predicted_class: int
    trace: ExtractionTrace
    logits: np.ndarray


@dataclass
class BatchExtractionResult:
    """Output of one batched extraction: N paths in packed-word form.

    ``traces`` is populated for the backward direction (whose engine
    walks samples individually anyway) and for forward extraction only
    on request — the vectorized forward engine never materialises
    per-sample operation counts unless asked.
    """

    packed: PackedPathBatch
    predicted_classes: np.ndarray
    logits: np.ndarray
    traces: Optional[List[ExtractionTrace]] = None

    @property
    def batch_size(self) -> int:
        return self.packed.batch_size

    def paths(self) -> List[ActivationPath]:
        """Unpack into per-sample paths (equivalence tests, explain)."""
        return self.packed.to_paths()


def _select_cumulative(psums: np.ndarray, theta: float) -> np.ndarray:
    """Indices of the minimal descending-sorted prefix of ``psums``
    whose cumulative sum reaches ``theta`` times the total (Fig. 3).

    Returns indices *into psums*.  Degenerate neurons are handled so
    paths never silently vanish: a neuron whose psum total is negative
    (e.g. a low-confidence predicted logit) keeps its single strongest
    positive contributor; an exactly-zero total has no important
    inputs.  The ISS ``acum`` instruction implements the same rule.
    """
    total = psums.sum()
    target = theta * total
    # stable descending sort: matches the hardware sort-unit semantics
    # (and the ISS), so compiled programs are bit-identical on ties
    order = np.argsort(-psums, kind="stable")
    if target <= 0.0:
        if total < 0.0 and psums.size and psums[order[0]] > 0.0:
            return order[:1]
        return np.empty(0, dtype=np.int64)
    csum = np.cumsum(psums[order])
    # cumulative sums of a descending sequence rise then fall; take the
    # first index reaching the target (always exists: max(csum) >= total)
    k = int(np.argmax(csum >= target)) + 1
    return order[:k]


def _select_absolute(psums: np.ndarray, phi: float) -> np.ndarray:
    """Indices where the partial sum exceeds the absolute threshold."""
    return np.flatnonzero(psums > phi)


def _select_cumulative_batch(psums: np.ndarray, theta: float) -> np.ndarray:
    """Row-wise :func:`_select_cumulative` over an ``(N, L)`` matrix,
    returned as a boolean selection matrix.

    Every step is the vectorized twin of the scalar path — same stable
    sort, same cumulative-sum order, same degenerate-row rules — so the
    selected sets are bit-identical per row (asserted by the
    batch-equivalence tests).
    """
    n, length = psums.shape
    totals = psums.sum(axis=1)
    targets = theta * totals
    order = np.argsort(-psums, axis=1, kind="stable")
    sorted_psums = np.take_along_axis(psums, order, axis=1)
    csums = np.cumsum(sorted_psums, axis=1)
    k = np.argmax(csums >= targets[:, None], axis=1) + 1
    degenerate = targets <= 0.0
    if degenerate.any():
        keep_one = degenerate & (totals < 0.0) & (sorted_psums[:, 0] > 0.0)
        k = np.where(degenerate, np.where(keep_one, 1, 0), k)
    flags = np.zeros((n, length), dtype=bool)
    flags[np.arange(n)[:, None], order] = (
        np.arange(length)[None, :] < k[:, None]
    )
    return flags


class PathExtractor:
    """Extracts activation paths from a model under a given config."""

    def __init__(self, model: Graph, config: ExtractionConfig):
        self.model = model
        self.config = config
        self.units = model.extraction_units()
        if len(self.units) != config.num_layers:
            raise ValueError(
                f"config has {config.num_layers} layer specs but the model "
                f"has {len(self.units)} extraction units"
            )
        self._unit_index = {node.name: i for i, node in enumerate(self.units)}
        self._layout: Optional[PathLayout] = None

    # -- layout ----------------------------------------------------------
    @property
    def layout(self) -> PathLayout:
        if self._layout is None:
            raise RuntimeError(
                "layout unknown until the first extract()/warm_up() call"
            )
        return self._layout

    def warm_up(self, x: np.ndarray) -> PathLayout:
        """Run one forward pass to fix feature-map shapes and the layout."""
        self.model.forward(x[:1])
        self._layout = self._build_layout()
        return self._layout

    def _build_layout(self) -> PathLayout:
        names: List[str] = []
        sizes: List[int] = []
        for i in self.config.extracted_indices():
            node = self.units[i]
            names.append(node.name)
            if self.config.direction is Direction.BACKWARD:
                sizes.append(node.module.input_feature_size)
            else:
                sizes.append(node.module.output_feature_size)
        return PathLayout(tuple(names), tuple(sizes))

    # -- extraction ----------------------------------------------------
    def extract(self, x: np.ndarray,
                reuse_forward: bool = False) -> ExtractionResult:
        """Extract the activation path of a single input.

        ``x`` must be a batch of exactly one sample (extraction reads
        per-sample caches such as max-pool argmax indices).  With
        ``reuse_forward=True`` the extractor consumes the model's
        existing forward state instead of re-running inference — used
        by fault injection, where the faulty activations must not be
        recomputed (and matching how the hardware extracts from the
        feature maps the accelerator actually produced).
        """
        if x.shape[0] != 1:
            raise ValueError("extraction requires a batch of exactly one input")
        if reuse_forward:
            if not self.model.activations:
                raise RuntimeError("reuse_forward=True requires a prior forward")
            logits = self.model.activations[self.model.output_name]
        else:
            logits = self.model.forward(x)
        if self._layout is None:
            self._layout = self._build_layout()
        predicted = int(logits[0].argmax())
        if self.config.direction is Direction.BACKWARD:
            masks, trace = self._extract_backward(predicted)
        else:
            masks, trace = self._extract_forward()
        path = ActivationPath(self._layout, masks)
        return ExtractionResult(path, predicted, trace, logits[0].copy())

    def extract_batch(
        self,
        x: np.ndarray,
        reuse_forward: bool = False,
        collect_traces: bool = False,
    ) -> BatchExtractionResult:
        """Extract the activation paths of a whole batch at once.

        One batched inference feeds all samples; forward-direction
        selection then runs as matrix kernels over the stacked feature
        maps, while backward extraction walks each sample's cached
        per-sample state (partial sums, pooling argmaxes).  Results are
        bit-identical to calling :meth:`extract` per sample — the model
        forward is batch-invariant and every selection step reuses the
        scalar path's exact operation order.
        """
        if x.ndim < 2:
            raise ValueError("extract_batch expects a batched input")
        if x.shape[0] == 0:
            if self._layout is None:
                raise RuntimeError(
                    "layout unknown; warm_up() before extracting an "
                    "empty batch"
                )
            num_classes = self.model.activations[
                self.model.output_name
            ].shape[1] if self.model.activations else 0
            return BatchExtractionResult(
                PackedPathBatch.from_paths(self._layout, []),
                np.empty(0, dtype=np.int64),
                np.empty((0, num_classes)),
                traces=[] if collect_traces else None,
            )
        if reuse_forward:
            if not self.model.activations:
                raise RuntimeError("reuse_forward=True requires a prior forward")
            logits = self.model.activations[self.model.output_name]
            if logits.shape[0] != x.shape[0]:
                raise ValueError(
                    "cached forward batch does not match the input batch"
                )
        else:
            logits = self.model.forward(x)
        if self._layout is None:
            self._layout = self._build_layout()
        predicted = logits.argmax(axis=1).astype(np.int64)
        traces: Optional[List[ExtractionTrace]] = None
        if self.config.direction is Direction.BACKWARD:
            paths: List[ActivationPath] = []
            traces = []
            for i in range(x.shape[0]):
                masks, trace = self._extract_backward(
                    int(predicted[i]), sample=i
                )
                paths.append(ActivationPath(self._layout, masks))
                traces.append(trace)
            # backward traces come for free (the walk builds them anyway)
            packed = PackedPathBatch.from_paths(self._layout, paths)
        else:
            packed, traces = self._extract_forward_batch(
                x.shape[0], collect_traces
            )
        return BatchExtractionResult(
            packed, predicted, logits.copy(), traces=traces
        )

    # -- forward batch engine ---------------------------------------------
    def _extract_forward_batch(
        self, batch_size: int, collect_traces: bool
    ) -> Tuple[PackedPathBatch, Optional[List[ExtractionTrace]]]:
        """Vectorized forward extraction over the cached batch forward."""
        tap_flags: List[np.ndarray] = []
        unit_meta: List[Tuple] = []
        for unit_idx in self.config.extracted_indices():
            node = self.units[unit_idx]
            spec = self.config.layers[unit_idx]
            values = self.model.activations[node.name].reshape(
                batch_size, -1
            )
            if spec.mechanism is Thresholding.CUMULATIVE:
                # rank outputs by value; cover theta of the positive mass
                positive = np.clip(values, 0.0, None)
                flags = _select_cumulative_batch(positive, spec.threshold)
            else:
                flags = values > spec.threshold
            tap_flags.append(flags)
            unit_meta.append((node, unit_idx, spec, values.shape[1]))
        packed = PackedPathBatch.from_tap_bools(self._layout, tap_flags)
        if not collect_traces:
            return packed, None
        traces: List[ExtractionTrace] = []
        per_tap_ones = [flags.sum(axis=1) for flags in tap_flags]
        for i in range(batch_size):
            trace = ExtractionTrace(Direction.FORWARD)
            for tap, (node, unit_idx, spec, size) in enumerate(unit_meta):
                unit_trace = UnitTrace(
                    name=node.name,
                    index=unit_idx,
                    extracted=True,
                    mechanism=spec.mechanism,
                    in_size=node.module.input_feature_size,
                    out_size=node.module.output_feature_size,
                    rf_size=node.module.nominal_rf_size(),
                    mac_count=node.module.mac_count(),
                )
                if spec.mechanism is Thresholding.CUMULATIVE:
                    unit_trace.n_psums_sorted = size
                else:
                    unit_trace.n_compared = size
                unit_trace.n_out_processed = size
                unit_trace.n_important = int(per_tap_ones[tap][i])
                trace.units.append(unit_trace)
            traces.append(trace)
        return packed, traces

    # -- backward engine ---------------------------------------------------
    def _extract_backward(
        self, predicted: int, sample: int = 0
    ) -> Tuple[List[Bitmask], ExtractionTrace]:
        trace = ExtractionTrace(Direction.BACKWARD)
        importance: Dict[str, np.ndarray] = {
            self.model.output_name: np.array([predicted], dtype=np.int64)
        }
        masks: Dict[int, Bitmask] = {}
        for node in reversed(self.model.nodes):
            positions = importance.pop(node.name, None)
            if positions is None or positions.size == 0:
                continue
            if node.name in self._unit_index:
                unit_idx = self._unit_index[node.name]
                spec = self.config.layers[unit_idx]
                if not spec.extract:
                    continue  # early-termination: stop the walk here
                in_positions, unit_trace = self._extract_unit_backward(
                    node.module, unit_idx, node.name, positions, spec,
                    sample=sample,
                )
                trace.units.append(unit_trace)
                masks[unit_idx] = Bitmask.from_positions(
                    node.module.input_feature_size, in_positions
                )
                self._merge(importance, node.inputs[0], in_positions)
            elif node.is_multi_input:
                split = node.module.propagate_back_multi(positions, sample)
                for input_name, pos in zip(node.inputs, split):
                    self._merge(importance, input_name, pos)
            else:
                mapped = node.module.propagate_back(positions, sample)
                self._merge(importance, node.inputs[0], mapped)
        trace.units.sort(key=lambda u: u.index)
        ordered = [
            masks.get(i, Bitmask(self.units[i].module.input_feature_size))
            for i in self.config.extracted_indices()
        ]
        return ordered, trace

    @staticmethod
    def _merge(importance: Dict[str, np.ndarray], name: str,
               positions: np.ndarray) -> None:
        if name == INPUT or positions.size == 0:
            return
        existing = importance.get(name)
        if existing is None:
            importance[name] = np.unique(positions)
        else:
            importance[name] = np.union1d(existing, positions)

    def _extract_unit_backward(
        self,
        module,
        unit_idx: int,
        name: str,
        out_positions: np.ndarray,
        spec: LayerSpec,
        sample: int = 0,
    ) -> Tuple[np.ndarray, UnitTrace]:
        unit_trace = UnitTrace(
            name=name,
            index=unit_idx,
            extracted=True,
            mechanism=spec.mechanism,
            in_size=module.input_feature_size,
            out_size=module.output_feature_size,
            rf_size=module.nominal_rf_size(),
            mac_count=module.mac_count(),
        )
        collected: List[np.ndarray] = []
        for out_pos in out_positions:
            psums = module.partial_sums(int(out_pos), sample)
            rf = module.receptive_field(int(out_pos))
            unit_trace.n_out_processed += 1
            if spec.mechanism is Thresholding.CUMULATIVE:
                chosen = _select_cumulative(psums, spec.threshold)
                unit_trace.n_psums_sorted += psums.size
            else:
                chosen = _select_absolute(psums, spec.threshold)
                unit_trace.n_compared += psums.size
            if chosen.size:
                collected.append(rf[chosen])
        in_positions = (
            np.unique(np.concatenate(collected))
            if collected
            else np.empty(0, dtype=np.int64)
        )
        unit_trace.n_important = int(in_positions.size)
        return in_positions, unit_trace

    # -- forward engine ----------------------------------------------------
    def _extract_forward(self) -> Tuple[List[Bitmask], ExtractionTrace]:
        trace = ExtractionTrace(Direction.FORWARD)
        masks: List[Bitmask] = []
        for unit_idx in self.config.extracted_indices():
            node = self.units[unit_idx]
            spec = self.config.layers[unit_idx]
            values = self.model.activations[node.name][0].ravel()
            unit_trace = UnitTrace(
                name=node.name,
                index=unit_idx,
                extracted=True,
                mechanism=spec.mechanism,
                in_size=node.module.input_feature_size,
                out_size=node.module.output_feature_size,
                rf_size=node.module.nominal_rf_size(),
                mac_count=node.module.mac_count(),
            )
            if spec.mechanism is Thresholding.CUMULATIVE:
                # rank outputs by value; cover theta of the positive mass
                positive = np.clip(values, 0.0, None)
                chosen = _select_cumulative(positive, spec.threshold)
                unit_trace.n_psums_sorted = values.size
            else:
                chosen = _select_absolute(values, spec.threshold)
                unit_trace.n_compared = values.size
            unit_trace.n_out_processed = values.size
            unit_trace.n_important = int(chosen.size)
            masks.append(Bitmask.from_positions(values.size, chosen))
            trace.units.append(unit_trace)
        return masks, trace


def calibrate_phi(
    model: Graph,
    config: ExtractionConfig,
    x_sample: np.ndarray,
    quantile: float = 0.98,
    max_outputs_per_unit: int = 64,
    seed: int = 0,
) -> ExtractionConfig:
    """Choose per-layer absolute thresholds ``phi`` from data.

    The paper specifies ``phi`` per layer but not how to pick it; we
    set ``phi`` to a high quantile of the quantity each layer compares:
    partial sums for backward-absolute layers, output activations for
    forward-absolute layers.  Returns a config copy with thresholds
    filled in.
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must be in (0, 1)")
    rng = np.random.default_rng(seed)
    units = model.extraction_units()
    if len(units) != config.num_layers:
        raise ValueError("config/model layer count mismatch")
    phi: Dict[int, float] = {}
    absolute_units = [
        i
        for i, spec in enumerate(config.layers)
        if spec.extract and spec.mechanism is Thresholding.ABSOLUTE
    ]
    if not absolute_units:
        return config
    samples: Dict[int, List[np.ndarray]] = {i: [] for i in absolute_units}
    for row in range(min(len(x_sample), 8)):
        model.forward(x_sample[row : row + 1])
        for i in absolute_units:
            module = units[i].module
            if config.direction is Direction.BACKWARD:
                out_size = module.output_feature_size
                picks = rng.choice(
                    out_size,
                    size=min(max_outputs_per_unit, out_size),
                    replace=False,
                )
                collected = [module.partial_sums(int(p)) for p in picks]
                samples[i].append(np.concatenate(collected))
            else:
                samples[i].append(
                    model.activations[units[i].name][0].ravel()
                )
    for i in absolute_units:
        pooled = np.concatenate(samples[i])
        phi[i] = float(np.quantile(pooled, quantile))
    return config.with_phi(phi)
