"""End-to-end Ptolemy detector (the online half of Fig. 4).

Pipeline: extract the activation path of an input, compare it to the
canary path of the *predicted* class, feed the similarity features to a
random forest, and flag the input as adversarial when the forest's
score exceeds the decision threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.backends import resolve_backend
from repro.core.classifier import RandomForest
from repro.core.config import Direction, ExtractionConfig
from repro.core.extraction import (
    BatchExtractionResult,
    ExtractionResult,
    PathExtractor,
)
from repro.core.metrics import roc_auc
from repro.core.path import (
    batch_path_similarity,
    batch_per_tap_similarity,
    path_similarity,
    per_tap_similarity,
)
from repro.core.profiling import ClassPathSet, profile_class_paths
from repro.core.trace import ExtractionTrace
from repro.nn.graph import Graph

__all__ = ["DetectionOutcome", "BatchDetectionResult", "PtolemyDetector"]


@dataclass
class DetectionOutcome:
    """Everything the detector derives from one input."""

    is_adversarial: bool
    score: float
    predicted_class: int
    similarity: float
    extraction: ExtractionResult


@dataclass
class BatchDetectionResult:
    """Vectorized detection over a batch: one row per input."""

    is_adversarial: np.ndarray
    scores: np.ndarray
    predicted_classes: np.ndarray
    similarities: np.ndarray
    extraction: BatchExtractionResult

    @property
    def batch_size(self) -> int:
        return self.scores.shape[0]

    def __len__(self) -> int:
        return self.batch_size

    def outcomes(self) -> List[DetectionOutcome]:
        """Materialise per-sample :class:`DetectionOutcome` objects
        (unpacks paths; intended for serving layers, not hot loops)."""
        paths = self.extraction.paths()
        traces = self.extraction.traces
        out: List[DetectionOutcome] = []
        for i in range(self.batch_size):
            trace = (
                traces[i]
                if traces is not None
                else ExtractionTrace(Direction.FORWARD)
            )
            result = ExtractionResult(
                path=paths[i],
                predicted_class=int(self.predicted_classes[i]),
                trace=trace,
                logits=self.extraction.logits[i],
            )
            out.append(
                DetectionOutcome(
                    is_adversarial=bool(self.is_adversarial[i]),
                    score=float(self.scores[i]),
                    predicted_class=int(self.predicted_classes[i]),
                    similarity=float(self.similarities[i]),
                    extraction=result,
                )
            )
        return out


class PtolemyDetector:
    """Offline-profiled, online adversarial-input detector.

    Parameters
    ----------
    model:
        The protected network.
    config:
        Extraction recipe (direction / thresholding / selective knobs).
    feature_mode:
        ``"scalar"`` feeds only the paper's similarity ``S`` to the
        classifier; ``"per_layer"`` (default) additionally feeds the
        per-tap similarity vector, which is strictly richer and equally
        cheap to compute in hardware (one popcount per tap).
    backend:
        Kernel backend for the batched score path (see
        :mod:`repro.core.backends`).  ``None`` resolves through the
        ``REPRO_KERNEL_BACKEND`` environment variable, then
        ``config.backend``, then the numpy reference.  Backends are
        bit-identical on scores and decisions; this is a throughput
        knob only.
    """

    def __init__(
        self,
        model: Graph,
        config: ExtractionConfig,
        feature_mode: str = "per_layer",
        n_trees: int = 100,
        max_depth: int = 12,
        seed: int = 0,
        backend: Optional[str] = None,
    ):
        if feature_mode not in ("scalar", "per_layer"):
            raise ValueError("feature_mode must be 'scalar' or 'per_layer'")
        self.model = model
        self.config = config
        self.feature_mode = feature_mode
        self.extractor = PathExtractor(model, config)
        self.class_paths: Optional[ClassPathSet] = None
        self.forest = RandomForest(n_trees=n_trees, max_depth=max_depth, seed=seed)
        self._fitted = False
        self.last_trace = None
        self._canary_cache = None
        self._canary_cache_key = None
        self.kernels = resolve_backend(backend, config_backend=config.backend)

    @property
    def kernel_backend(self) -> str:
        """Name of the active kernel backend (what introspection
        surfaces report)."""
        return self.kernels.name

    def set_backend(self, backend: Optional[str]) -> "PtolemyDetector":
        """Re-resolve the kernel backend (deployment-time override:
        engines and shard workers call this with their own knob)."""
        self.kernels = resolve_backend(
            backend, config_backend=self.config.backend
        )
        return self

    # -- offline ----------------------------------------------------------
    def profile(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        max_per_class: Optional[int] = None,
    ) -> ClassPathSet:
        """Build the canary class paths from (correctly predicted)
        training samples."""
        self.class_paths = profile_class_paths(
            self.extractor, x_train, y_train, max_per_class
        )
        # A freed ClassPathSet's id() can be reused, so the cache key
        # alone cannot be trusted across re-profiling.
        self._canary_cache = None
        self._canary_cache_key = None
        return self.class_paths

    def fit_classifier(
        self, x_benign: np.ndarray, x_adversarial: np.ndarray
    ) -> "PtolemyDetector":
        """Train the random forest on labelled benign/adversarial sets.

        Features come from the batched pipeline, which is bit-identical
        to extracting each sample on its own.
        """
        if self.class_paths is None:
            raise RuntimeError("call profile() before fit_classifier()")
        feats_benign = self._features_chunked(x_benign)
        feats_adv = self._features_chunked(x_adversarial)
        feats = np.vstack([feats_benign, feats_adv])
        labels = np.concatenate(
            [np.zeros(len(x_benign), dtype=np.int64),
             np.ones(len(x_adversarial), dtype=np.int64)]
        )
        self.forest.fit(feats, labels)
        self._fitted = True
        return self

    # -- online ----------------------------------------------------
    def features_for(
        self, x: np.ndarray, reuse_forward: bool = False
    ) -> Tuple[np.ndarray, ExtractionResult]:
        """Similarity feature vector for one input (batch of one).

        ``reuse_forward=True`` extracts from the model's existing
        activation state instead of re-running inference — required
        when that state was produced specially (e.g. by fault
        injection, :func:`repro.eval.forward_with_fault`).
        """
        if self.class_paths is None:
            raise RuntimeError("detector has no class paths; call profile()")
        result = self.extractor.extract(x, reuse_forward=reuse_forward)
        self.last_trace = result.trace
        if result.predicted_class in self.class_paths:
            canary = self.class_paths.path_for(result.predicted_class)
            sim = path_similarity(result.path, canary)
            if self.feature_mode == "per_layer":
                per_tap = per_tap_similarity(result.path, canary)
                features = np.concatenate([[sim], per_tap])
            else:
                features = np.array([sim])
        else:
            # the predicted class was never (correctly) seen in profiling:
            # maximally suspicious
            width = 1 + (
                self.extractor.layout.num_taps
                if self.feature_mode == "per_layer"
                else 0
            )
            sim = 0.0
            features = np.zeros(width)
        return features, result

    # -- batched online pipeline ---------------------------------------
    def _packed_canaries(self):
        """Canary class paths as a packed word matrix, cached until the
        class-path set changes (identity or sample counts)."""
        if self.class_paths is None:
            raise RuntimeError("detector has no class paths; call profile()")
        key = (
            id(self.class_paths),
            len(self.class_paths.paths),
            sum(p.num_samples for p in self.class_paths.paths.values()),
        )
        if self._canary_cache is None or self._canary_cache_key != key:
            self._canary_cache = self.class_paths.packed()
            self._canary_cache_key = key
        return self._canary_cache

    def features_batch(
        self, x: np.ndarray, reuse_forward: bool = False
    ) -> Tuple[np.ndarray, BatchExtractionResult]:
        """Similarity feature matrix ``(N, F)`` for a batch of inputs.

        Bit-identical to stacking :meth:`features_for` over each sample:
        inputs whose predicted class was never profiled gather an
        all-zero canary row, which yields exactly the all-zero
        (maximally suspicious) feature vector of the scalar path.
        """
        if self.class_paths is None:
            raise RuntimeError("detector has no class paths; call profile()")
        result = self.extractor.extract_batch(x, reuse_forward=reuse_forward)
        canaries = self._packed_canaries()
        rows, _known = canaries.rows_for(result.predicted_classes)
        sims = batch_path_similarity(result.packed, rows, kernels=self.kernels)
        if self.feature_mode == "per_layer":
            per_tap = batch_per_tap_similarity(
                result.packed, rows, kernels=self.kernels
            )
            features = np.concatenate([sims[:, None], per_tap], axis=1)
        else:
            features = sims[:, None]
        return features, result

    def classify_features(self, features: np.ndarray) -> np.ndarray:
        """Forest scores for a feature matrix (empty-batch safe)."""
        if not self._fitted:
            raise RuntimeError("classifier not fitted; call fit_classifier()")
        if features.shape[0] == 0:
            return np.empty(0)
        return self.forest.predict_proba(features)

    @staticmethod
    def assemble_batch_result(
        scores: np.ndarray,
        features: np.ndarray,
        extraction: BatchExtractionResult,
        threshold: float,
    ) -> BatchDetectionResult:
        """Threshold scores and package one batch's decisions (shared by
        :meth:`detect_batch` and the runtime engine)."""
        return BatchDetectionResult(
            is_adversarial=scores >= threshold,
            scores=scores,
            predicted_classes=extraction.predicted_classes,
            similarities=features[:, 0] if features.size else np.empty(0),
            extraction=extraction,
        )

    def scores_batch(
        self, x: np.ndarray, reuse_forward: bool = False
    ) -> np.ndarray:
        """Adversary probabilities for a batch of inputs."""
        if not self._fitted:
            raise RuntimeError("classifier not fitted; call fit_classifier()")
        features, _ = self.features_batch(x, reuse_forward=reuse_forward)
        return self.classify_features(features)

    def detect_batch(
        self,
        x: np.ndarray,
        threshold: float = 0.5,
        reuse_forward: bool = False,
    ) -> BatchDetectionResult:
        """Full online detection of a batch of inputs."""
        if not self._fitted:
            raise RuntimeError("classifier not fitted; call fit_classifier()")
        features, result = self.features_batch(x, reuse_forward=reuse_forward)
        scores = self.classify_features(features)
        return self.assemble_batch_result(scores, features, result, threshold)

    def similarity(self, x: np.ndarray) -> float:
        """The paper's scalar similarity ``S`` for one input."""
        features, _ = self.features_for(x)
        return float(features[0])

    def score(self, x: np.ndarray) -> float:
        """Adversary probability from the random forest."""
        if not self._fitted:
            raise RuntimeError("classifier not fitted; call fit_classifier()")
        features, _ = self.features_for(x)
        return float(self.forest.predict_proba(features[None])[0])

    def detect(self, x: np.ndarray, threshold: float = 0.5,
               reuse_forward: bool = False) -> DetectionOutcome:
        """Full online detection of one input."""
        if not self._fitted:
            raise RuntimeError("classifier not fitted; call fit_classifier()")
        features, result = self.features_for(x, reuse_forward=reuse_forward)
        score = float(self.forest.predict_proba(features[None])[0])
        return DetectionOutcome(
            is_adversarial=score >= threshold,
            score=score,
            predicted_class=result.predicted_class,
            similarity=float(features[0]),
            extraction=result,
        )

    # -- evaluation --------------------------------------------------------
    def _features_chunked(
        self, xs: np.ndarray, chunk: int = 256
    ) -> np.ndarray:
        """Feature matrix for a whole set, extracted in micro-batches so
        the model's activation caches stay bounded.  Each sample's
        result is independent of its batch, so this is bit-identical to
        one giant batch."""
        if len(xs) <= chunk:
            return self.features_batch(xs)[0]
        return np.vstack([
            self.features_batch(xs[start : start + chunk])[0]
            for start in range(0, len(xs), chunk)
        ])

    def scores_for_set(self, xs: np.ndarray, chunk: int = 256) -> np.ndarray:
        """Scores for an evaluation set, processed in micro-batches."""
        if not self._fitted:
            raise RuntimeError("classifier not fitted; call fit_classifier()")
        return self.classify_features(self._features_chunked(xs, chunk))

    def evaluate_auc(
        self, x_benign: np.ndarray, x_adversarial: np.ndarray
    ) -> float:
        """AUC over an evenly-labelled benign/adversarial test set."""
        scores = np.concatenate(
            [self.scores_for_set(x_benign), self.scores_for_set(x_adversarial)]
        )
        labels = np.concatenate(
            [np.zeros(len(x_benign)), np.ones(len(x_adversarial))]
        )
        return roc_auc(labels, scores)
