"""DAG network container.

Models are flat directed acyclic graphs of primitive layers.  A flat
graph (rather than nested composite modules) is what makes Ptolemy's
path extraction straightforward: extraction walks the same node list
that inference does, so important-neuron positions can be propagated
through pooling/merge layers without special cases per architecture.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.nn.layers import Add, Concat, Conv2d, Linear
from repro.nn.module import Module, Parameter

__all__ = ["Node", "Graph", "INPUT"]

#: Sentinel name for the graph input.
INPUT = "input"


class Node:
    """A named layer instance plus the names of its input nodes."""

    def __init__(self, name: str, module: Module, inputs: Sequence[str]):
        self.name = name
        self.module = module
        self.inputs = list(inputs)

    @property
    def is_multi_input(self) -> bool:
        return isinstance(self.module, (Add, Concat))

    def __repr__(self) -> str:
        return f"Node({self.name!r}, {self.module!r}, inputs={self.inputs})"


class Graph(Module):
    """A feed-forward DAG of layers with a single input and output.

    Nodes must be added in topological order (each node's inputs must
    already exist).  The last node added is the output unless
    ``set_output`` is called.
    """

    def __init__(self, name: str = "graph"):
        super().__init__()
        self.name = name
        self.nodes: List[Node] = []
        self._by_name: Dict[str, Node] = {}
        self._output_name: Optional[str] = None
        self.activations: Dict[str, np.ndarray] = {}

    # -- construction ----------------------------------------------------
    def add(
        self, name: str, module: Module, inputs: Optional[Sequence[str]] = None
    ) -> str:
        """Add a node and return its name (for chaining)."""
        if name in self._by_name or name == INPUT:
            raise ValueError(f"duplicate node name: {name!r}")
        if inputs is None:
            inputs = [self.nodes[-1].name] if self.nodes else [INPUT]
        for input_name in inputs:
            if input_name != INPUT and input_name not in self._by_name:
                raise ValueError(
                    f"node {name!r} references unknown input {input_name!r}"
                )
        node = Node(name, module, inputs)
        self.nodes.append(node)
        self._by_name[name] = node
        self._output_name = name
        return name

    def set_output(self, name: str) -> None:
        if name not in self._by_name:
            raise ValueError(f"unknown node: {name!r}")
        self._output_name = name

    def node(self, name: str) -> Node:
        return self._by_name[name]

    @property
    def output_name(self) -> str:
        if self._output_name is None:
            raise RuntimeError("graph has no nodes")
        return self._output_name

    # -- execution ----------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        acts: Dict[str, np.ndarray] = {INPUT: x}
        for node in self.nodes:
            if node.is_multi_input:
                out = node.module.forward_multi([acts[i] for i in node.inputs])
            else:
                out = node.module.forward(acts[node.inputs[0]])
            acts[node.name] = out
        self.activations = acts
        return acts[self.output_name]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Reverse-accumulate gradients; returns the input gradient."""
        return self.backward_from({self.output_name: grad_out})

    def backward_from(self, seeds: Dict[str, np.ndarray]) -> np.ndarray:
        """Backward pass seeded at arbitrary nodes.

        ``seeds`` maps node names to output-gradient arrays.  Used by
        the adaptive attack (Sec. VII-E), whose loss depends on
        intermediate activations rather than only the logits.
        """
        grads: Dict[str, np.ndarray] = {k: v.copy() for k, v in seeds.items()}
        for node in reversed(self.nodes):
            if node.name not in grads:
                continue
            grad = grads.pop(node.name)
            if node.is_multi_input:
                input_grads = node.module.backward_multi(grad)
            else:
                input_grads = [node.module.backward(grad)]
            for input_name, g in zip(node.inputs, input_grads):
                if input_name in grads:
                    grads[input_name] = grads[input_name] + g
                else:
                    grads[input_name] = g
        return grads[INPUT]

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions (argmax of logits)."""
        return self.forward(x).argmax(axis=1)

    # -- parameters -----------------------------------------------------
    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for node in self.nodes:
            params.extend(node.module.parameters())
        return params

    def train(self, mode: bool = True) -> "Graph":
        self.training = mode
        for node in self.nodes:
            node.module.train(mode)
        return self

    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for node in self.nodes:
            state.update(node.module.state_dict(prefix + node.name + "."))
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], prefix: str = "") -> None:
        for node in self.nodes:
            node.module.load_state_dict(state, prefix + node.name + ".")

    # -- extraction metadata -----------------------------------------------
    def extraction_units(self) -> List[Node]:
        """Conv/Linear nodes in topological (inference) order.

        These are the layers that produce partial sums; Ptolemy's layer
        indices (start/termination layer, Sec. III-C) index this list.
        """
        return [
            node
            for node in self.nodes
            if isinstance(node.module, (Conv2d, Linear))
        ]

    def num_extraction_units(self) -> int:
        return len(self.extraction_units())

    def consumers(self, name: str) -> List[Node]:
        """Nodes that read the activation produced by ``name``."""
        return [node for node in self.nodes if name in node.inputs]

    def total_macs(self) -> int:
        """Total MACs for one inference (after a forward pass)."""
        return sum(node.module.mac_count() for node in self.extraction_units())

    def __repr__(self) -> str:
        return f"Graph({self.name!r}, nodes={len(self.nodes)})"
