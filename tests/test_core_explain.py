"""Tests for repro.core.explain — path-based interpretability."""

import numpy as np
import pytest

from repro.core import (
    Bitmask,
    ExtractionConfig,
    PathExtractor,
    PathLayout,
    divergence_report,
    input_saliency,
)
from repro.core.path import ActivationPath


@pytest.fixture(scope="module")
def bwcu_result(trained_alexnet, small_dataset):
    config = ExtractionConfig.bwcu(8, theta=0.5)
    extractor = PathExtractor(trained_alexnet, config)
    return extractor.extract(small_dataset.x_test[:1])


@pytest.fixture(scope="module")
def fwab_result(trained_alexnet, small_dataset):
    config = ExtractionConfig.fwab(8, phi=0.0)
    extractor = PathExtractor(trained_alexnet, config)
    return extractor.extract(small_dataset.x_test[:1])


class TestInputSaliency:
    def test_shape_collapsed(self, bwcu_result):
        saliency = input_saliency(bwcu_result, (3, 16, 16))
        assert saliency.shape == (16, 16)
        assert set(np.unique(saliency)) <= {0.0, 1.0}

    def test_shape_full(self, bwcu_result):
        saliency = input_saliency(bwcu_result, (3, 16, 16),
                                  collapse_channels=False)
        assert saliency.shape == (3, 16, 16)

    def test_matches_tap0_popcount(self, bwcu_result):
        saliency = input_saliency(bwcu_result, (3, 16, 16),
                                  collapse_channels=False)
        assert int(saliency.sum()) == bwcu_result.path.masks[0].popcount()

    def test_sparse_but_nonempty(self, bwcu_result):
        """The paper: important neurons are generally <5% of the network;
        the input tap is sparse but a real prediction depends on
        something."""
        saliency = input_saliency(bwcu_result, (3, 16, 16),
                                  collapse_channels=False)
        density = saliency.mean()
        assert 0.0 < density < 0.5

    def test_forward_rejected(self, fwab_result):
        with pytest.raises(ValueError):
            input_saliency(fwab_result, (3, 16, 16))

    def test_wrong_shape_rejected(self, bwcu_result):
        with pytest.raises(ValueError):
            input_saliency(bwcu_result, (3, 8, 8))

    def test_truncated_extraction_rejected(self, trained_alexnet,
                                           small_dataset):
        config = ExtractionConfig.bwcu(8, theta=0.5, termination_layer=3)
        result = PathExtractor(trained_alexnet, config).extract(
            small_dataset.x_test[:1]
        )
        with pytest.raises(ValueError):
            input_saliency(result, (3, 16, 16))


def _path_from_positions(layout, positions_per_tap):
    return ActivationPath(layout, [
        Bitmask.from_positions(size, positions)
        for size, positions in zip(layout.tap_sizes, positions_per_tap)
    ])


class TestDivergenceReport:
    @pytest.fixture
    def layout(self):
        return PathLayout(("a", "b", "c"), (8, 8, 8))

    def test_identical_paths_no_divergence(self, layout):
        path = _path_from_positions(layout, [(0, 1), (2,), (3, 4)])
        report = divergence_report(path, path)
        assert all(r.divergence == 0.0 for r in report)

    def test_worst_first_ordering(self, layout):
        path = _path_from_positions(layout, [(0, 1), (2, 3), (4, 5)])
        canary = _path_from_positions(layout, [(0, 1), (2,), (6, 7)])
        report = divergence_report(path, canary)
        # tap c: 0/2 hits (divergence 1.0); tap b: 1/2; tap a: 2/2
        assert [r.name for r in report] == ["c", "b", "a"]
        assert report[0].divergence == 1.0
        assert report[-1].divergence == 0.0

    def test_tap_order_preserved_when_unsorted(self, layout):
        path = _path_from_positions(layout, [(0,), (1,), (2,)])
        canary = _path_from_positions(layout, [(5,), (1,), (7,)])
        report = divergence_report(path, canary, worst_first=False)
        assert [r.tap for r in report] == [0, 1, 2]

    def test_popcounts_reported(self, layout):
        path = _path_from_positions(layout, [(0, 1, 2), (), (4,)])
        canary = _path_from_positions(layout, [(0,), (1, 2), ()])
        report = divergence_report(path, canary, worst_first=False)
        assert report[0].path_ones == 3
        assert report[0].canary_ones == 1
        assert report[1].path_ones == 0

    def test_empty_tap_zero_similarity(self, layout):
        path = _path_from_positions(layout, [(), (), ()])
        canary = _path_from_positions(layout, [(0,), (1,), (2,)])
        report = divergence_report(path, canary)
        assert all(r.similarity == 0.0 for r in report)

    def test_layout_mismatch_rejected(self, layout):
        other = PathLayout(("a", "b"), (8, 8))
        path = _path_from_positions(layout, [(0,), (1,), (2,)])
        alien = _path_from_positions(other, [(0,), (1,)])
        with pytest.raises(ValueError):
            divergence_report(path, alien)


class TestEndToEndDivergence:
    def test_adversarial_diverges_more_than_benign(self, trained_alexnet,
                                                   small_dataset):
        """A flagged input should show larger worst-tap divergence from
        its predicted-class canary than a correctly-handled benign one."""
        from repro.attacks import BIM
        from repro.core import PtolemyDetector

        detector = PtolemyDetector(
            trained_alexnet, ExtractionConfig.bwcu(8, theta=0.5),
            n_trees=20, seed=0,
        )
        detector.profile(small_dataset.x_train, small_dataset.y_train,
                         max_per_class=15)
        adv = BIM(eps=0.08).generate(
            trained_alexnet, small_dataset.x_test[:8],
            small_dataset.y_test[:8],
        ).x_adv

        def worst_divergence(x):
            result = detector.extractor.extract(x)
            if result.predicted_class not in detector.class_paths:
                return 1.0
            canary = detector.class_paths.path_for(result.predicted_class)
            return divergence_report(result.path, canary)[0].divergence

        benign_div = np.mean([worst_divergence(x[None])
                              for x in small_dataset.x_test[8:16]])
        adv_div = np.mean([worst_divergence(x[None]) for x in adv])
        assert adv_div > benign_div