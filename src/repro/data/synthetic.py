"""Synthetic image dataset generation.

Each class ``c`` gets a prototype: a smooth random field built by
low-pass filtering white noise.  A sample of class ``c`` is::

    x = clip(prototype_c + shift + elastic-ish jitter + noise, 0, 1)

Two presets mirror the paper's datasets:

* :func:`make_imagenet_like` — many classes with *low* prototype
  correlation (distinct classes, like 1000-class ImageNet).
* :func:`make_cifar_like` — few classes with *higher* prototype
  correlation (cat-vs-dog-style similarity, like CIFAR-10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np
from scipy import ndimage

__all__ = [
    "DatasetSpec",
    "SyntheticDataset",
    "make_dataset",
    "make_imagenet_like",
    "make_cifar_like",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Parameters of a synthetic dataset."""

    num_classes: int = 10
    image_size: int = 16
    channels: int = 3
    train_per_class: int = 60
    test_per_class: int = 20
    noise: float = 0.12
    #: 0 -> independent prototypes; towards 1 -> classes share a common
    #: base pattern and become similar (the CIFAR regime).
    class_similarity: float = 0.0
    smoothness: float = 2.0
    seed: int = 0


@dataclass
class SyntheticDataset:
    """Generated train/test arrays plus the class prototypes."""

    spec: DatasetSpec
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    prototypes: np.ndarray = field(repr=False)

    @property
    def num_classes(self) -> int:
        return self.spec.num_classes

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        return (self.spec.channels, self.spec.image_size, self.spec.image_size)


def _smooth_field(
    rng: np.random.Generator, channels: int, size: int, smoothness: float
) -> np.ndarray:
    """A smooth random pattern in [0, 1] of shape (C, size, size)."""
    noise = rng.normal(size=(channels, size, size))
    smoothed = ndimage.gaussian_filter(noise, sigma=(0, smoothness, smoothness))
    low = smoothed.min(axis=(1, 2), keepdims=True)
    high = smoothed.max(axis=(1, 2), keepdims=True)
    return (smoothed - low) / np.maximum(high - low, 1e-12)


def _make_prototypes(spec: DatasetSpec, rng: np.random.Generator) -> np.ndarray:
    base = _smooth_field(rng, spec.channels, spec.image_size, spec.smoothness)
    protos = np.empty(
        (spec.num_classes, spec.channels, spec.image_size, spec.image_size)
    )
    for c in range(spec.num_classes):
        unique = _smooth_field(rng, spec.channels, spec.image_size, spec.smoothness)
        protos[c] = (
            spec.class_similarity * base + (1.0 - spec.class_similarity) * unique
        )
    return protos


def _sample(
    proto: np.ndarray, rng: np.random.Generator, noise: float
) -> np.ndarray:
    """One noisy, jittered instance of a prototype."""
    shift_y, shift_x = rng.integers(-1, 2, size=2)
    shifted = np.roll(proto, (int(shift_y), int(shift_x)), axis=(1, 2))
    gain = 1.0 + rng.normal(0.0, 0.08)
    bias = rng.normal(0.0, 0.04)
    sample = gain * shifted + bias + rng.normal(0.0, noise, size=proto.shape)
    return np.clip(sample, 0.0, 1.0)


def make_dataset(spec: Optional[DatasetSpec] = None) -> SyntheticDataset:
    """Generate a full dataset from a spec (deterministic per seed)."""
    spec = spec or DatasetSpec()
    if spec.num_classes < 2:
        raise ValueError("need at least two classes")
    rng = np.random.default_rng(spec.seed)
    prototypes = _make_prototypes(spec, rng)

    def _split(per_class: int):
        images = np.empty(
            (
                spec.num_classes * per_class,
                spec.channels,
                spec.image_size,
                spec.image_size,
            )
        )
        labels = np.empty(spec.num_classes * per_class, dtype=np.int64)
        i = 0
        for c in range(spec.num_classes):
            for _ in range(per_class):
                images[i] = _sample(prototypes[c], rng, spec.noise)
                labels[i] = c
                i += 1
        order = rng.permutation(len(labels))
        return images[order], labels[order]

    x_train, y_train = _split(spec.train_per_class)
    x_test, y_test = _split(spec.test_per_class)
    return SyntheticDataset(spec, x_train, y_train, x_test, y_test, prototypes)


def make_imagenet_like(
    num_classes: int = 10,
    image_size: int = 16,
    train_per_class: int = 60,
    test_per_class: int = 20,
    seed: int = 0,
) -> SyntheticDataset:
    """Many-distinct-classes regime (the paper's ImageNet role)."""
    return make_dataset(
        DatasetSpec(
            num_classes=num_classes,
            image_size=image_size,
            train_per_class=train_per_class,
            test_per_class=test_per_class,
            class_similarity=0.0,
            noise=0.10,
            seed=seed,
        )
    )


def make_cifar_like(
    num_classes: int = 10,
    image_size: int = 16,
    train_per_class: int = 60,
    test_per_class: int = 20,
    seed: int = 1,
) -> SyntheticDataset:
    """Few-similar-classes regime (the paper's CIFAR role)."""
    return make_dataset(
        DatasetSpec(
            num_classes=num_classes,
            image_size=image_size,
            train_per_class=train_per_class,
            test_per_class=test_per_class,
            class_similarity=0.55,
            noise=0.10,
            seed=seed,
        )
    )
