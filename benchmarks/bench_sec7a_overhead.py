"""Sec. VII-A — area and DRAM-space overhead analysis, plus the
8-bit / 32x32 variants of Sec. VII-G.

Paper result: 5.2% area overhead (3.9 points SRAM, 0.4 MAC
augmentation, 0.9 other logic); BwAb/FwAb mask storage needs 1.6 MB
(AlexNet) / 2.2 MB (ResNet18) extra DRAM, and BwCu with the recompute
optimisation needs 12.8 MB / 17.6 MB; the 8-bit design rises to 5.5%
area overhead.
"""

from repro.core import ExtractionConfig, PathExtractor, calibrate_phi
from repro.eval import Workbench, render_table
from repro.hw import DEFAULT_HW, area_report, detection_dram_footprint


def _dram_rows(wb):
    model, workload = wb.model, wb.workload
    n = model.num_extraction_units()
    x = wb.dataset.x_test[:1]
    rows = []
    bwab = calibrate_phi(model, ExtractionConfig.bwab(n), wb.dataset.x_train[:4])
    trace = PathExtractor(model, bwab).extract(x).trace
    fp = detection_dram_footprint(workload, bwab, trace, DEFAULT_HW, False)
    rows.append(("BwAb masks", fp.space_bytes / 1024))
    bwcu = ExtractionConfig.bwcu(n, theta=0.5)
    trace = PathExtractor(model, bwcu).extract(x).trace
    fp_rec = detection_dram_footprint(workload, bwcu, trace, DEFAULT_HW, True)
    fp_all = detection_dram_footprint(workload, bwcu, trace, DEFAULT_HW, False)
    rows.append(("BwCu recompute", fp_rec.space_bytes / 1024))
    rows.append(("BwCu store-all", fp_all.space_bytes / 1024))
    return rows


def test_sec7a_area_overhead(benchmark):
    def run():
        rows = []
        for name, hw in (
            ("16-bit 20x20 (paper 5.2%)", DEFAULT_HW),
            ("8-bit 20x20 (paper 5.5%)", DEFAULT_HW.with_8bit()),
            ("16-bit 32x32 (paper 6.4%)", DEFAULT_HW.with_array(32, 32)),
        ):
            report = area_report(hw)
            b = report.breakdown()
            rows.append((name, b["overhead_pct"], b["sram_pct_points"],
                         b["mac_aug_pct_points"], b["logic_pct_points"]))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        "Sec VII-A: area overhead breakdown",
        ["configuration", "overhead %", "SRAM pts", "MAC-aug pts",
         "logic pts"],
        rows, float_fmt="{:.2f}",
    ))
    default_pct = rows[0][1]
    assert 4.0 <= default_pct <= 7.0           # ~5.2% in the paper
    assert rows[1][1] > default_pct            # 8-bit raises the overhead
    # SRAM dominates the additions, as in the paper
    assert rows[0][2] > rows[0][3]


def test_sec7a_dram_space(benchmark):
    wb = Workbench.get("alexnet_imagenet")
    rows = benchmark.pedantic(lambda: _dram_rows(wb), rounds=1, iterations=1)
    print()
    print(render_table(
        "Sec VII-A: extra DRAM space, MiniAlexNet (paper, full-scale "
        "AlexNet: masks 1.6MB; BwCu recompute 12.8MB; store-all >>)",
        ["regime", "extra DRAM (KiB)"],
        rows, float_fmt="{:.1f}",
    ))
    by_name = dict(rows)
    # masks << recompute << store-all: the paper's space hierarchy
    assert by_name["BwAb masks"] < by_name["BwCu recompute"]
    assert by_name["BwCu recompute"] < by_name["BwCu store-all"]
