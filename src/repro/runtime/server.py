"""HTTP serving front-end for the sharded detection service.

:class:`DetectionHTTPServer` puts a network boundary on
:meth:`ShardedDetectionService.submit` using only the stdlib
(``http.server.ThreadingHTTPServer`` — no new dependencies), so real
multi-user traffic can reach the engine:

* ``POST /v1/detect[?model=<name>[@<ver>]][&class=<class>]`` — one
  detection request.  The body is either JSON
  (``{"samples": [[...], ...]}`` or a bare nested list) or a raw
  ``.npy`` array (``Content-Type: application/octet-stream``).  The
  ``model`` query parameter routes through the service's
  :class:`~repro.runtime.registry.ModelRegistry` (absent → the default
  model, preserving the single-model contract bit-identically); the
  request class comes from the ``class`` query parameter or the
  ``X-Repro-Class`` header (``interactive``/``standard``/``batch``,
  default ``standard``).  The response carries the ordered decision
  arrays — bit-identical to :meth:`DetectionEngine.run` over the same
  samples at any worker count — plus the resolved ``model`` spec and
  ``class``.
* ``GET /v1/models`` — the registry listing: every name/version, which
  version serves, per-version request counts, drain state, and the
  request-class table.
* ``POST /v1/models`` — hot-swap: register a new version and
  drain-and-replace the old one.  Body is
  ``{"name": ..., "from": "name[@ver]"}`` (clone an already-registered
  state) or ``{"name": ..., "path": ...}`` (load a saved detector via
  the server's ``model_loader`` callback), optionally with
  ``"threshold"``.
* ``DELETE /v1/models/<name[@version]>`` — explicit retirement of a
  non-serving version: the registry marks it retired and every worker
  unloads its engine.  Idempotent for an already-retired version; the
  serving version (or one still draining) is refused with ``409``
  (``conflict``) — promote a replacement first.
* ``GET /v1/stats`` — service throughput/latency accounting, server
  counters (global and per request class), per-model sections with
  per-class queue-wait percentiles, and the per-(model, class)
  adaptive controller states.
* ``GET /healthz`` — 200 while at least one worker is alive and the
  server is accepting traffic; 503 during worker-pool outage or drain.

Backpressure is bounded, explicit, and class-aware: at most
``max_inflight`` requests may be in flight, and each request class may
only occupy its ``admit_fraction`` share of that budget — so under
overload the lowest class (``batch``) is refused first with ``429 Too
Many Requests`` (plus ``Retry-After``) while ``interactive`` still
admits, instead of queueing without bound.  Per-request deadlines
scale with the class (``request_timeout * slo_scale``).  Shutdown is a
graceful drain — new requests get 503 while in-flight ones finish (up
to ``drain_timeout``), then the listener closes.

Every error response uses one JSON schema::

    {"error": <human-readable message>,
     "code":  <machine-readable slug>,
     "retry_after": <seconds to back off, or null>}

with ``Retry-After`` also set as a header when non-null.  Mapping:
malformed body/shape/spec/class → 400 (``bad_request``), unknown
model/version or path → 404 (``model_not_found`` / ``not_found``),
retiring the serving or still-draining version → 409 (``conflict``),
oversized body → 413 (``payload_too_large``), class budget exhausted →
429 (``backpressure``), drain → 503 (``draining``), worker-pool
failure → 503 (``service_unavailable``), request deadline → 504
(``deadline_exceeded``), anything else → 500 (``internal``).

The client helpers honor that schema: :class:`RetryPolicy` retries
idempotent-safe outcomes only (429/503, or a connection that died
*before* any response) with exponential backoff, jitter, and the
server's ``Retry-After`` when present.
"""

from __future__ import annotations

import http.client
import io
import json
import random
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

import numpy as np

from repro.runtime.registry import (
    REQUEST_CLASSES,
    UnknownModelError,
    parse_model_spec,
    resolve_request_class,
)

__all__ = [
    "DetectionHTTPServer",
    "RetryPolicy",
    "encode_npy",
    "post_detect",
    "post_json",
    "get_json",
    "wait_for_health",
]

#: Default cap on request bodies (64 MiB) — far above any sane
#: micro-batch, small enough that one rogue client cannot OOM the box.
MAX_BODY_BYTES = 64 << 20


# -- client helpers ----------------------------------------------------------

@dataclass
class RetryPolicy:
    """Retry budget + exponential backoff for the HTTP client helpers.

    Retries only *idempotent-safe* outcomes: a 429/503 response (the
    server explicitly said "back off and come again"), or a connection
    that failed **before any response arrived** (refused, reset, or
    dropped without a status line — the request was never processed).
    A 4xx/5xx that proves the server processed the request (400, 404,
    409, 500, 504, ...) is never retried.

    The delay for attempt ``k`` is ``base_delay * multiplier**k``
    capped at ``max_delay``, stretched by a uniform jitter of up to
    ``jitter`` (a fraction) so synchronized clients fan out.  When the
    failing response carried ``Retry-After`` (header or body field)
    and ``honor_retry_after`` is set, that value replaces the computed
    backoff (still capped at ``max_delay``).

    ``seed`` pins the jitter stream and ``sleep`` is injectable, so
    tests run deterministic and instant.
    """

    max_retries: int = 4
    base_delay: float = 0.1
    max_delay: float = 5.0
    multiplier: float = 2.0
    jitter: float = 0.25
    honor_retry_after: bool = True
    seed: Optional[int] = None
    sleep: Callable[[float], None] = time.sleep
    #: total retries performed across calls (observability for drills)
    retries_used: int = field(default=0, init=False)

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0 <= self.jitter:
            raise ValueError("jitter must be non-negative")
        self._rng = random.Random(self.seed)

    def delay_for(
        self, attempt: int, retry_after: Optional[float] = None
    ) -> float:
        """Seconds to back off before retry number ``attempt`` (0-based)."""
        if self.honor_retry_after and retry_after is not None:
            return min(float(retry_after), self.max_delay)
        delay = min(
            self.max_delay, self.base_delay * self.multiplier ** attempt
        )
        if self.jitter:
            delay *= 1.0 + self._rng.uniform(0.0, self.jitter)
        return min(delay, self.max_delay)

    @staticmethod
    def is_retryable(exc: BaseException) -> bool:
        """Whether this failure is safe to retry (see class docstring)."""
        if isinstance(exc, urllib.error.HTTPError):
            return exc.code in (429, 503)
        if isinstance(exc, urllib.error.URLError):
            return isinstance(
                exc.reason,
                (
                    ConnectionResetError,
                    ConnectionRefusedError,
                    http.client.RemoteDisconnected,
                ),
            )
        return isinstance(
            exc,
            (
                ConnectionResetError,
                ConnectionRefusedError,
                http.client.RemoteDisconnected,
            ),
        )

    @staticmethod
    def retry_after_from(exc: BaseException) -> Optional[float]:
        """Extract the server's ``Retry-After`` hint from a failed
        response: the header first, the unified error body's
        ``retry_after`` field as fallback; ``None`` when absent."""
        if not isinstance(exc, urllib.error.HTTPError):
            return None
        header = None
        if exc.headers is not None:
            header = exc.headers.get("Retry-After")
        if header is not None:
            try:
                return float(header)
            except ValueError:
                return None
        try:
            payload = json.loads(exc.read().decode("utf-8"))
            value = payload.get("retry_after")
            return None if value is None else float(value)
        except (
            OSError,
            ValueError,
            UnicodeDecodeError,
            AttributeError,
        ):
            return None

    def call(self, fn: Callable[[], dict]) -> dict:
        """Run ``fn`` under this policy: on a retryable failure, back
        off and try again until the budget is spent, then re-raise."""
        attempt = 0
        while True:
            try:
                return fn()
            except Exception as exc:
                if attempt >= self.max_retries or not self.is_retryable(exc):
                    raise
                delay = self.delay_for(attempt, self.retry_after_from(exc))
                attempt += 1
                self.retries_used += 1
                self.sleep(delay)


def encode_npy(xs: np.ndarray) -> bytes:
    """Serialize an array as ``.npy`` bytes (the binary request body)."""
    buf = io.BytesIO()
    np.save(buf, np.asarray(xs), allow_pickle=False)
    return buf.getvalue()


def _send_request(
    request: urllib.request.Request,
    timeout: float,
    retry: Optional[RetryPolicy],
) -> dict:
    def attempt() -> dict:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))

    if retry is None:
        return attempt()
    return retry.call(attempt)


def post_detect(
    base_url: str,
    xs: np.ndarray,
    *,
    binary: bool = True,
    timeout: float = 120.0,
    model: Optional[str] = None,
    request_class: Optional[str] = None,
    retry: Optional[RetryPolicy] = None,
) -> dict:
    """POST one detection request; returns the decoded JSON response.

    ``model`` is a ``name[@version]`` spec sent as the ``model`` query
    parameter; ``request_class`` is sent as the ``X-Repro-Class``
    header.  ``retry`` applies a :class:`RetryPolicy` to retryable
    outcomes (429/503/connection-reset before response); detection is
    idempotent, so redelivery is always safe.  Raises
    :class:`urllib.error.HTTPError` on non-2xx (the bench and the
    tests read ``exc.code`` off it).
    """
    if binary:
        body = encode_npy(xs)
        content_type = "application/octet-stream"
    else:
        body = json.dumps(
            {"samples": np.asarray(xs).tolist()}
        ).encode("utf-8")
        content_type = "application/json"
    path = "/v1/detect"
    if model is not None:
        path += "?" + urllib.parse.urlencode({"model": model})
    headers = {"Content-Type": content_type}
    if request_class is not None:
        headers["X-Repro-Class"] = request_class
    request = urllib.request.Request(
        base_url.rstrip("/") + path,
        data=body,
        headers=headers,
        method="POST",
    )
    return _send_request(request, timeout, retry)


def post_json(
    base_url: str,
    path: str,
    payload: dict,
    timeout: float = 60.0,
    retry: Optional[RetryPolicy] = None,
) -> dict:
    """POST a JSON payload (e.g. a ``/v1/models`` hot-swap) and decode
    the JSON response.  ``retry`` applies a :class:`RetryPolicy`; only
    pass one for idempotent payloads (note a retried hot-swap POST may
    register two versions)."""
    request = urllib.request.Request(
        base_url.rstrip("/") + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    return _send_request(request, timeout, retry)


def get_json(base_url: str, path: str, timeout: float = 10.0) -> dict:
    """GET a JSON endpoint (``/healthz``, ``/v1/stats``)."""
    with urllib.request.urlopen(
        base_url.rstrip("/") + path, timeout=timeout
    ) as response:
        return json.loads(response.read().decode("utf-8"))


def wait_for_health(
    base_url: str,
    timeout: float = 60.0,
    interval: float = 0.1,
    retry: Optional[RetryPolicy] = None,
) -> bool:
    """Poll ``/healthz`` until it reports healthy or ``timeout``.

    Probes back off exponentially with jitter (a :class:`RetryPolicy`,
    seeded from ``interval`` as the base delay) instead of a fixed
    interval, so a fleet of clients booting against the same server
    does not synchronize into probe storms."""
    policy = retry if retry is not None else RetryPolicy(
        base_delay=interval, max_delay=max(interval, 1.0)
    )
    deadline = time.monotonic() + timeout
    attempt = 0
    while time.monotonic() < deadline:
        try:
            if get_json(base_url, "/healthz")["status"] == "ok":
                return True
        except (urllib.error.URLError, OSError, ValueError, KeyError):
            pass
        delay = policy.delay_for(attempt)
        attempt += 1
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        policy.sleep(min(delay, remaining))
    return False


# -- server ------------------------------------------------------------------

class _Handler(BaseHTTPRequestHandler):
    """Per-connection handler; all state lives on ``server.front``."""

    server_version = "repro-detect/1.0"
    protocol_version = "HTTP/1.1"
    # Per-connection socket timeout so a stalled client cannot pin a
    # handler thread forever (StreamRequestHandler applies this).
    timeout = 120.0

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging is the caller's concern, not stderr's

    def _send_json(
        self, code: int, payload: dict, extra_headers: Optional[dict] = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:
        front: "DetectionHTTPServer" = self.server.front
        path = urllib.parse.urlsplit(self.path).path
        if path == "/healthz":
            payload, code = front.health()
            self._send_json(code, payload)
        elif path == "/v1/stats":
            self._send_json(200, front.stats_payload())
        elif path == "/v1/models":
            front.handle_models_get(self)
        else:
            front.send_error_json(
                self, 404, "not_found", f"no such path: {self.path}"
            )

    def do_POST(self) -> None:
        front: "DetectionHTTPServer" = self.server.front
        split = urllib.parse.urlsplit(self.path)
        query = urllib.parse.parse_qs(split.query)
        if split.path == "/v1/detect":
            front.handle_detect(self, query)
        elif split.path == "/v1/models":
            front.handle_models_post(self)
        else:
            # the body was never read; a keep-alive reuse would misparse
            self.close_connection = True
            front.send_error_json(
                self, 404, "not_found", f"no such path: {self.path}"
            )

    def do_DELETE(self) -> None:
        front: "DetectionHTTPServer" = self.server.front
        path = urllib.parse.urlsplit(self.path).path
        prefix = "/v1/models/"
        if path.startswith(prefix) and len(path) > len(prefix):
            spec = urllib.parse.unquote(path[len(prefix):])
            front.handle_models_delete(self, spec)
        else:
            front.send_error_json(
                self, 404, "not_found", f"no such path: {self.path}"
            )


class _Httpd(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address, handler, front: "DetectionHTTPServer"):
        self.front = front
        super().__init__(address, handler)


class DetectionHTTPServer:
    """The HTTP boundary over one :class:`ShardedDetectionService`.

    Parameters
    ----------
    service:
        Anything with the service surface (``submit`` returning a
        future, ``stats()``, ``alive_workers``, ``restarts``, and
        optionally ``adaptive``/``failure``) — in production the
        sharded service, in tests a stub.
    host / port:
        Bind address; port 0 picks an ephemeral port (read it back
        from :attr:`port` / :attr:`url`).
    max_inflight:
        Bounded backpressure: requests beyond this many in flight are
        refused with 429 instead of queueing.
    request_timeout:
        Per-request deadline waiting on the service future (504 on
        expiry).
    max_body_bytes:
        Reject larger request bodies with 413.
    drain_timeout:
        How long :meth:`close` waits for in-flight requests.
    model_loader:
        Optional callback for ``POST /v1/models`` with a ``"path"``
        body: ``model_loader(path) -> (state, model_factory,
        threshold)``.  The CLI wires one that loads a saved detector
        directory against the serving scenario's architecture; without
        it only ``"from"`` (clone-an-existing-spec) hot-swaps work.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_inflight: int = 8,
        request_timeout: float = 120.0,
        max_body_bytes: int = MAX_BODY_BYTES,
        drain_timeout: float = 30.0,
        model_loader: Optional[Callable] = None,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be positive")
        if request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        self.service = service
        self.max_inflight = max_inflight
        self.request_timeout = request_timeout
        self.max_body_bytes = max_body_bytes
        self.drain_timeout = drain_timeout
        self.model_loader = model_loader
        self._lock = threading.Lock()
        self._inflight = 0
        # admitted requests whose handler thread is still doing I/O:
        # the admission slot (_inflight) frees as soon as the service
        # work completes, but drain must also wait for the response
        # bytes to finish going out (handler threads are daemonic)
        self._responding = 0
        self._draining = False
        self._counters = {
            "requests_total": 0,
            "responses_200": 0,
            "responses_429": 0,
            "client_errors": 0,
            "server_errors": 0,
        }
        # per-class admission accounting (admitted/shed per class name)
        self._class_counters = {
            name: {"admitted": 0, "shed": 0} for name in REQUEST_CLASSES
        }
        self._httpd = _Httpd((host, port), _Handler, front=self)
        self._thread: Optional[threading.Thread] = None
        self._started_at = time.monotonic()

    @property
    def _multi(self) -> bool:
        """Whether the backing service speaks the multi-model surface
        (a real :class:`ShardedDetectionService`; test stubs may not)."""
        return hasattr(self.service, "registry")

    # -- lifecycle ------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def start(self) -> "DetectionHTTPServer":
        """Serve in a background thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="detection-http-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop accepting work, drain in-flight requests, shut down.

        New ``POST /v1/detect`` requests are refused with 503 the
        moment this is called; in-flight ones get up to
        ``drain_timeout`` to finish before the listener closes.  The
        underlying detection service is *not* stopped — it belongs to
        the caller.
        """
        with self._lock:
            self._draining = True
        if drain:
            deadline = time.monotonic() + self.drain_timeout
            while time.monotonic() < deadline:
                with self._lock:
                    if self._inflight == 0 and self._responding == 0:
                        break
                time.sleep(0.01)
        if self._thread is not None:
            # shutdown() waits on an event only serve_forever() sets —
            # calling it on a never-started server would hang forever
            self._httpd.shutdown()
            self._thread.join(timeout=10)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "DetectionHTTPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- endpoint logic -------------------------------------------------
    def health(self) -> tuple:
        """(payload, status_code) for ``/healthz``."""
        alive = getattr(self.service, "alive_workers", 0)
        failure = getattr(self.service, "failure", None)
        with self._lock:
            draining = self._draining
            inflight = self._inflight
        healthy = alive > 0 and failure is None and not draining
        payload = {
            "status": "ok" if healthy else "unhealthy",
            "alive_workers": int(alive),
            "inflight": inflight,
            "draining": draining,
            "failure": repr(failure) if failure is not None else None,
            "uptime_seconds": time.monotonic() - self._started_at,
        }
        return payload, (200 if healthy else 503)

    def stats_payload(self) -> dict:
        with self._lock:
            server = dict(self._counters)
            server["inflight"] = self._inflight
            server["max_inflight"] = self.max_inflight
            server["draining"] = self._draining
            class_counters = {
                name: dict(counts)
                for name, counts in self._class_counters.items()
            }
        adaptive = getattr(self.service, "adaptive", None)
        # per-model engine accounting + per-(model, class) controllers
        # (empty for single-model stubs without the registry surface)
        models = {}
        adaptive_classes = {}
        if self._multi:
            models = {
                spec: stats.report()
                for spec, stats in self.service.model_stats().items()
            }
            adaptive_classes = self.service.adaptive_snapshots()
        # per-class enqueue→dispatch wait percentiles (absent for stubs
        # without the dispatcher-side recording)
        wait_fn = getattr(self.service, "class_wait_stats", None)
        class_waits = wait_fn() if callable(wait_fn) else {}
        classes = {
            name: {
                **cls.snapshot(),
                "admit_limit": cls.admit_limit(self.max_inflight),
                **class_counters.get(name, {}),
                **(
                    {"queue_wait": class_waits[name]}
                    if name in class_waits else {}
                ),
            }
            for name, cls in REQUEST_CLASSES.items()
        }
        return {
            "service": self.service.stats().report(),
            "server": server,
            "adaptive": (
                adaptive.snapshot() if adaptive is not None else None
            ),
            "alive_workers": int(
                getattr(self.service, "alive_workers", 0)
            ),
            "restarts": int(getattr(self.service, "restarts", 0)),
            # effective kernel backend per shard (None until a shard
            # reported ready), plus what the operator asked for
            "backend_requested": getattr(self.service, "backend", None),
            "kernel_backends": (
                self.service.shard_backends()
                if hasattr(self.service, "shard_backends") else {}
            ),
            "default_model": getattr(self.service, "default_model", None),
            "models": models,
            "classes": classes,
            "adaptive_classes": adaptive_classes,
        }

    def _count(self, key: str) -> None:
        with self._lock:
            self._counters[key] += 1

    def send_error_json(
        self,
        handler: _Handler,
        status: int,
        code: str,
        message: str,
        retry_after: Optional[float] = None,
    ) -> None:
        """Emit the one error schema every non-2xx response uses:
        ``{"error": <message>, "code": <slug>, "retry_after": <s|null>}``
        (plus a ``Retry-After`` header when non-null)."""
        headers = (
            {"Retry-After": f"{retry_after:g}"}
            if retry_after is not None else None
        )
        handler._send_json(
            status,
            {
                "error": message,
                "code": code,
                "retry_after": retry_after,
            },
            headers,
        )

    def _parse_body(self, body: bytes, content_type: str) -> np.ndarray:
        """Decode a request body into a sample array; ValueError on any
        malformed input (mapped to 400 by the caller)."""
        kind = content_type.split(";")[0].strip().lower()
        if kind in ("application/octet-stream", "application/x-npy"):
            try:
                return np.load(io.BytesIO(body), allow_pickle=False)
            except Exception as exc:
                raise ValueError(f"invalid .npy body: {exc}") from exc
        # default: JSON
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"invalid JSON body: {exc}") from exc
        if isinstance(payload, dict):
            if "samples" not in payload:
                raise ValueError('JSON body must carry a "samples" key')
            payload = payload["samples"]
        try:
            return np.asarray(payload, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"samples are not a numeric array: {exc}"
            ) from exc

    def handle_detect(self, handler: _Handler, query: dict) -> None:
        from repro.runtime.service import ServiceError

        self._count("requests_total")
        model_spec = (query.get("model") or [None])[0]
        class_name = (
            (query.get("class") or [None])[0]
            or handler.headers.get("X-Repro-Class")
        )
        try:
            cls = resolve_request_class(class_name)
        except ValueError as exc:
            self._count("client_errors")
            handler.close_connection = True  # body never read
            self.send_error_json(handler, 400, "bad_request", str(exc))
            return
        try:
            length = int(handler.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if length <= 0:
            self._count("client_errors")
            handler.close_connection = True  # body (if any) never read
            self.send_error_json(
                handler, 400, "bad_request",
                "request body required (Content-Length)",
            )
            return
        if length > self.max_body_bytes:
            self._count("client_errors")
            handler.close_connection = True  # body never read
            self.send_error_json(
                handler, 413, "payload_too_large",
                f"body exceeds {self.max_body_bytes} bytes",
            )
            return
        # bounded, class-aware backpressure: admit or refuse *before*
        # reading work.  Each class only gets its admit_fraction share
        # of the in-flight budget, so the lowest class sheds first.
        limit = cls.admit_limit(self.max_inflight)
        with self._lock:
            if self._draining:
                admitted = False
                draining = True
            elif self._inflight >= limit:
                admitted = False
                draining = False
                self._class_counters[cls.name]["shed"] += 1
            else:
                self._inflight += 1
                self._responding += 1
                admitted = True
                draining = False
                self._class_counters[cls.name]["admitted"] += 1
        if not admitted:
            handler.close_connection = True  # refused before body read
            if draining:
                self._count("server_errors")
                self.send_error_json(
                    handler, 503, "draining", "server is draining",
                    retry_after=1.0,
                )
            else:
                self._count("responses_429")
                self.send_error_json(
                    handler, 429, "backpressure",
                    (
                        f"too many in-flight requests for class "
                        f"{cls.name!r} ({limit} of "
                        f"{self.max_inflight} slots)"
                    ),
                    retry_after=1.0,
                )
            return
        # One-shot slot release: the slot guards *service work*, not
        # socket writing, so every response path frees it before the
        # response bytes go out — otherwise a client that posts again
        # the instant it reads a response races the handler thread's
        # cleanup and bounces off a slot held only for I/O.  The
        # finally below is the idempotent backstop for error paths.
        released = [False]

        def release() -> None:
            with self._lock:
                if not released[0]:
                    released[0] = True
                    self._inflight -= 1

        try:
            self._handle_admitted(handler, length, model_spec, cls, release)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to answer
        except ServiceError as exc:
            self._count("server_errors")
            release()
            try:
                self.send_error_json(
                    handler, 503, "service_unavailable", str(exc)
                )
            except (BrokenPipeError, ConnectionResetError):
                pass
        except Exception as exc:  # never let a bug wedge the slot
            self._count("server_errors")
            release()
            try:
                self.send_error_json(
                    handler, 500, "internal", f"internal error: {exc!r}"
                )
            except (BrokenPipeError, ConnectionResetError):
                pass
        finally:
            release()
            with self._lock:
                self._responding -= 1

    def _handle_admitted(
        self, handler: _Handler, length: int, model_spec, cls, release
    ) -> None:
        started = time.perf_counter()
        body = handler.rfile.read(length)
        try:
            xs = self._parse_body(
                body, handler.headers.get("Content-Type", "")
            )
            if self._multi:
                future = self.service.submit(
                    xs, model=model_spec, request_class=cls.name
                )
            elif model_spec is not None:
                # a stub/legacy single-model service cannot route
                self._count("client_errors")
                release()
                self.send_error_json(
                    handler, 404, "model_not_found",
                    f"unknown model {model_spec!r}: "
                    "this server hosts a single unnamed model",
                )
                return
            else:
                future = self.service.submit(xs)
        except UnknownModelError as exc:
            self._count("client_errors")
            release()
            self.send_error_json(handler, 404, "model_not_found", str(exc))
            return
        except ValueError as exc:
            self._count("client_errors")
            release()
            self.send_error_json(handler, 400, "bad_request", str(exc))
            return
        # class-aware deadline: interactive gets a tighter budget than
        # batch, mirroring the per-class SLO scaling in the service
        deadline = self.request_timeout * cls.slo_scale
        try:
            result = future.result(timeout=deadline)
        except TimeoutError:
            # abandon the request in the service too, or its queued
            # chunks would pile up behind every future deadline
            cancel = getattr(future, "cancel", None)
            if callable(cancel):
                cancel()
            self._count("server_errors")
            release()
            self.send_error_json(
                handler, 504, "deadline_exceeded",
                (
                    f"request deadline exceeded ({deadline:.1f}s, "
                    f"class {cls.name!r})"
                ),
            )
            return
        wall_ms = (time.perf_counter() - started) * 1e3
        self._count("responses_200")
        release()
        handler._send_json(
            200,
            {
                "num_samples": int(result.num_samples),
                "scores": result.scores.tolist(),
                "predicted_classes": result.predicted_classes.tolist(),
                "is_adversarial": result.is_adversarial.tolist(),
                "similarities": result.similarities.tolist(),
                "rejection_rate": float(result.rejection_rate),
                "wall_ms": wall_ms,
                "model": getattr(future, "model", None),
                "class": cls.name,
            },
        )

    # -- model management endpoints -------------------------------------
    def handle_models_get(self, handler: _Handler) -> None:
        if not self._multi:
            self.send_error_json(
                handler, 404, "not_found",
                "this server hosts a single unnamed model "
                "(no registry attached)",
            )
            return
        handler._send_json(200, self.service.models())

    def handle_models_post(self, handler: _Handler) -> None:
        """Hot-swap endpoint: register a new model version and
        drain-and-replace the serving one (see module docstring)."""
        from repro.runtime.service import ServiceError

        try:
            length = int(handler.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if length <= 0 or length > self.max_body_bytes:
            self._count("client_errors")
            handler.close_connection = True
            if length > self.max_body_bytes:
                self.send_error_json(
                    handler, 413, "payload_too_large",
                    f"body exceeds {self.max_body_bytes} bytes",
                )
            else:
                self.send_error_json(
                    handler, 400, "bad_request",
                    "request body required (Content-Length)",
                )
            return
        body = handler.rfile.read(length)
        if not self._multi:
            self._count("client_errors")
            self.send_error_json(
                handler, 404, "not_found",
                "this server hosts a single unnamed model "
                "(no registry attached)",
            )
            return
        try:
            payload = json.loads(body.decode("utf-8"))
            if not isinstance(payload, dict) or "name" not in payload:
                raise ValueError(
                    'JSON body must be an object with a "name" key'
                )
        except (UnicodeDecodeError, json.JSONDecodeError, ValueError) as exc:
            self._count("client_errors")
            self.send_error_json(handler, 400, "bad_request", str(exc))
            return
        name = payload["name"]
        threshold = payload.get("threshold")
        try:
            if "from" in payload:
                entry = self.service.load_model(
                    name, source=payload["from"], threshold=threshold
                )
            elif "path" in payload:
                if self.model_loader is None:
                    self._count("client_errors")
                    self.send_error_json(
                        handler, 400, "bad_request",
                        'this server has no model_loader; only "from" '
                        "(clone an existing spec) hot-swaps are available",
                    )
                    return
                state, factory, default_threshold = self.model_loader(
                    payload["path"]
                )
                entry = self.service.load_model(
                    name,
                    state=state,
                    model_factory=factory,
                    threshold=(
                        default_threshold if threshold is None else threshold
                    ),
                )
            else:
                self._count("client_errors")
                self.send_error_json(
                    handler, 400, "bad_request",
                    'body must carry "from" (an existing name[@version] '
                    'to clone) or "path" (a saved detector directory)',
                )
                return
        except UnknownModelError as exc:
            self._count("client_errors")
            self.send_error_json(handler, 404, "model_not_found", str(exc))
            return
        except FileNotFoundError as exc:
            self._count("client_errors")
            self.send_error_json(handler, 404, "not_found", str(exc))
            return
        except ValueError as exc:
            self._count("client_errors")
            self.send_error_json(handler, 400, "bad_request", str(exc))
            return
        except ServiceError as exc:
            self._count("server_errors")
            self.send_error_json(
                handler, 503, "service_unavailable", str(exc)
            )
            return
        self._count("responses_200")
        handler._send_json(
            200,
            {
                "name": entry.name,
                "version": entry.version,
                "spec": entry.spec,
                "serving": True,
            },
        )

    def handle_models_delete(self, handler: _Handler, spec: str) -> None:
        """Explicit retirement: ``DELETE /v1/models/<name[@version]>``.

        404 for an unknown name/version, 409 (``conflict``) for the
        serving version or one still draining — promote a replacement
        (or wait) and retry.  Idempotent once retired."""
        from repro.runtime.service import ServiceError

        if not self._multi or not hasattr(self.service, "retire_model"):
            self._count("client_errors")
            self.send_error_json(
                handler, 404, "not_found",
                "this server hosts a single unnamed model "
                "(no registry attached)",
            )
            return
        try:
            parse_model_spec(spec)
        except ValueError as exc:
            self._count("client_errors")
            self.send_error_json(handler, 400, "bad_request", str(exc))
            return
        try:
            payload = self.service.retire_model(spec)
        except UnknownModelError as exc:
            self._count("client_errors")
            self.send_error_json(handler, 404, "model_not_found", str(exc))
            return
        except ValueError as exc:
            # serving version, or a drain still in progress: the state
            # can change shortly, so hint a quick retry
            self._count("client_errors")
            self.send_error_json(
                handler, 409, "conflict", str(exc), retry_after=1.0
            )
            return
        except ServiceError as exc:
            self._count("server_errors")
            self.send_error_json(
                handler, 503, "service_unavailable", str(exc)
            )
            return
        self._count("responses_200")
        handler._send_json(200, payload)
