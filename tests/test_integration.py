"""Cross-module integration tests: the full offline/online pipeline of
Fig. 4 wired through extraction, profiling, classification, hardware
simulation, and the defenses package, on one shared substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import BIM, FGSM
from repro.compiler import apply_optimizations
from repro.core import (
    ExtractionConfig,
    PathExtractor,
    PtolemyDetector,
    calibrate_phi,
    profile_class_paths,
)
from repro.defenses import StochasticActivationPruning, TransformDefense
from repro.hw import model_workload, simulate_detection
from repro.hw.config import DEFAULT_HW

VARIANTS = ("BwCu", "BwAb", "FwAb", "Hybrid")


def _config(model, variant, sample):
    n = model.num_extraction_units()
    if variant == "BwCu":
        return ExtractionConfig.bwcu(n)
    if variant == "BwAb":
        return calibrate_phi(model, ExtractionConfig.bwab(n), sample)
    if variant == "FwAb":
        return calibrate_phi(
            model, ExtractionConfig.fwab(n), sample, quantile=0.95
        )
    return calibrate_phi(model, ExtractionConfig.hybrid(n), sample)


@pytest.fixture(scope="module", params=VARIANTS)
def fitted_detector(request, trained_alexnet, small_dataset):
    """One profiled + fitted detector per Ptolemy variant."""
    config = _config(
        trained_alexnet, request.param, small_dataset.x_train[:4]
    )
    detector = PtolemyDetector(trained_alexnet, config, n_trees=30, seed=0)
    detector.profile(
        small_dataset.x_train, small_dataset.y_train, max_per_class=12
    )
    adv = BIM(eps=0.08).generate(
        trained_alexnet, small_dataset.x_train[:20], small_dataset.y_train[:20]
    ).x_adv
    detector.fit_classifier(small_dataset.x_train[20:40], adv)
    return request.param, detector


class TestFullPipelinePerVariant:
    def test_detects_bim(self, fitted_detector, trained_alexnet, small_dataset):
        _, detector = fitted_detector
        benign = small_dataset.x_test[:12]
        adv = BIM(eps=0.08).generate(
            trained_alexnet, benign, small_dataset.y_test[:12]
        ).x_adv
        auc = detector.evaluate_auc(benign, adv)
        assert auc > 0.7, f"{fitted_detector[0]} AUC {auc:.3f}"

    def test_detect_consistent_with_score(self, fitted_detector, small_dataset):
        _, detector = fitted_detector
        x = small_dataset.x_test[:1]
        outcome = detector.detect(x)
        assert outcome.score == pytest.approx(detector.score(x))
        assert outcome.is_adversarial == (outcome.score >= 0.5)

    def test_hw_cost_simulates(self, fitted_detector, trained_alexnet,
                               small_dataset):
        """Every variant's extraction trace feeds the cycle model and
        yields a >= 1x latency multiplier."""
        variant, detector = fitted_detector
        trained_alexnet.forward(small_dataset.x_test[:1])
        workload = model_workload(trained_alexnet)
        trace = detector.extractor.extract(small_dataset.x_test[:1]).trace
        schedule = apply_optimizations(
            detector.config, detector.config.num_layers
        )
        cost = simulate_detection(
            workload, detector.config, trace, schedule, DEFAULT_HW
        )
        assert cost.latency_overhead >= 1.0
        assert cost.energy_overhead >= 1.0


class TestCostOrdering:
    """The paper's headline ordering must emerge end-to-end, not just
    inside the hw model: FwAb hides extraction, BwCu pays for sorting."""

    @pytest.fixture(scope="class")
    def costs(self, trained_alexnet, small_dataset):
        trained_alexnet.forward(small_dataset.x_test[:1])
        workload = model_workload(trained_alexnet)
        sample = small_dataset.x_train[:4]
        out = {}
        for variant in ("BwCu", "BwAb", "FwAb"):
            config = _config(trained_alexnet, variant, sample)
            extractor = PathExtractor(trained_alexnet, config)
            trace = extractor.extract(small_dataset.x_test[:1]).trace
            schedule = apply_optimizations(config, config.num_layers)
            out[variant] = simulate_detection(
                workload, config, trace, schedule, DEFAULT_HW
            )
        return out

    def test_fwab_cheapest_latency(self, costs):
        assert costs["FwAb"].latency_overhead <= costs["BwAb"].latency_overhead
        assert costs["FwAb"].latency_overhead < costs["BwCu"].latency_overhead

    def test_bwcu_most_expensive_energy(self, costs):
        assert costs["BwCu"].energy_overhead > costs["BwAb"].energy_overhead
        assert costs["BwCu"].energy_overhead > costs["FwAb"].energy_overhead

    def test_fwab_latency_near_inference(self, costs):
        """The paper's headline: forward extraction hides behind
        inference (2% on AlexNet; generous bound here)."""
        assert costs["FwAb"].latency_overhead < 1.5


class TestIncrementalProfiling:
    """Sec. III-B: new samples are OR-ed into existing class paths
    'without having to re-generate the entire class paths'."""

    def test_incremental_equals_batch(self, trained_alexnet, small_dataset):
        config = ExtractionConfig.bwcu(
            trained_alexnet.num_extraction_units()
        )
        extractor = PathExtractor(trained_alexnet, config)
        x, y = small_dataset.x_train[:30], small_dataset.y_train[:30]

        batch = profile_class_paths(extractor, x, y)
        first = profile_class_paths(extractor, x[:15], y[:15])
        second = profile_class_paths(extractor, x[15:], y[15:])
        # OR the second half into the first, class by class.
        for cid, path in second.paths.items():
            for tap, mask in enumerate(path.masks):
                merged = first.path_for(cid)
                merged.masks[tap] |= mask

        assert set(first.paths) == set(batch.paths)
        for cid in batch.paths:
            for got, want in zip(first.paths[cid].masks, batch.paths[cid].masks):
                np.testing.assert_array_equal(got, want)


class TestReuseForward:
    def test_reuse_forward_matches_fresh_extraction(
        self, trained_alexnet, small_dataset
    ):
        config = ExtractionConfig.bwcu(
            trained_alexnet.num_extraction_units()
        )
        extractor = PathExtractor(trained_alexnet, config)
        x = small_dataset.x_test[:1]
        fresh = extractor.extract(x)
        trained_alexnet.forward(x)
        reused = extractor.extract(x, reuse_forward=True)
        assert fresh.predicted_class == reused.predicted_class
        for got, want in zip(reused.path.masks, fresh.path.masks):
            np.testing.assert_array_equal(got, want)


class TestDefenseInterop:
    """The defenses package and the Ptolemy detector expose the same
    evaluate_auc contract, so harnesses can mix them freely."""

    def test_all_detectors_share_eval_contract(
        self, trained_alexnet, small_dataset
    ):
        benign = small_dataset.x_test[:8]
        adv = FGSM(eps=0.1).generate(
            trained_alexnet, benign, small_dataset.y_test[:8]
        ).x_adv
        detectors = [
            TransformDefense(trained_alexnet),
            StochasticActivationPruning(trained_alexnet, n_passes=3, seed=0),
        ]
        for detector in detectors:
            auc = detector.evaluate_auc(benign, adv)
            assert 0.0 <= auc <= 1.0
            scores = detector.scores_for_set(benign)
            assert scores.shape == (8,)
