"""Micro-benchmarks of the detection primitives (real timed runs):
per-input path extraction for each variant, bitmask algebra on
class-path-sized vectors, compiled-program execution on the ISS, and
the batched packed-word kernels swept across the pluggable compute
backends.

These are the operations the hardware accelerates; their software
timings motivate the co-design (Sec. III-B's 15.4x software overhead).
The backend sweep is also the measurement behind the CI perf gate's
``kernels`` section (``scripts/perf_gate.py``), which enforces the
tiled backend's large-batch speedup over the numpy reference on
multi-core hosts.

Run standalone for the nightly JSON artifact::

    python benchmarks/bench_micro_primitives.py --output kernels.json
    python benchmarks/bench_micro_primitives.py --backend numpy tiled
"""

import os
import sys
import time
from pathlib import Path

# Standalone-script bootstrap (pytest runs go through conftest instead).
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro.compiler import MemoryMap, compile_bwcu
from repro.core import Bitmask, ExtractionConfig, PathExtractor
from repro.core.backends import available_backends, get_backend
from repro.core.bitmask import (
    batch_containment,
    batch_popcount,
    pack_bool_matrix,
    segment_popcount,
)
from repro.eval import Workbench
from repro.isa import Machine, ModelAdapter

#: Backend-sweep workload: large enough that the tiled backend's row
#: tiles and thread pool genuinely engage (4096 rows x 512 words packs
#: 16 MiB — far past its min-rows and single-tile fall-throughs).
KERNEL_ROWS = 4096
KERNEL_BITS = 512 * 64
#: The CI envelope the perf gate enforces on multi-core hosts: tiled
#: must reach >= 1.5x the numpy reference on the large-batch
#: containment kernel (ratio-only — never an absolute cross-machine
#: comparison; auto-skipped where a single CPU makes it impossible).
TILED_SPEEDUP_FLOOR = 1.5


def test_micro_extract_bwcu(benchmark):
    wb = Workbench.get("alexnet_imagenet")
    extractor = PathExtractor(wb.model, wb.config_for("BwCu"))
    x = wb.dataset.x_test[:1]
    result = benchmark(lambda: extractor.extract(x))
    assert result.path.popcount() > 0


def test_micro_extract_fwab(benchmark):
    wb = Workbench.get("alexnet_imagenet")
    extractor = PathExtractor(wb.model, wb.config_for("FwAb"))
    x = wb.dataset.x_test[:1]
    result = benchmark(lambda: extractor.extract(x))
    assert result.predicted_class in range(wb.dataset.num_classes)


def test_micro_bitmask_similarity(benchmark):
    rng = np.random.default_rng(0)
    size = 1 << 16
    a = Bitmask.from_bool(rng.random(size) < 0.05)
    b = Bitmask.from_bool(rng.random(size) < 0.3)
    count = benchmark(lambda: a.intersection_count(b))
    assert 0 <= count <= a.popcount()


def test_micro_iss_bwcu_program(benchmark, trained_mlp=None):
    from repro.data import make_imagenet_like
    from repro.nn import TrainConfig, build_mlp, train_classifier

    ds = make_imagenet_like(num_classes=4, train_per_class=15,
                            test_per_class=4, seed=11)
    x_train = ds.x_train.reshape(len(ds.x_train), -1)
    model = build_mlp(in_features=x_train.shape[1], hidden=(20, 12),
                      num_classes=4, seed=2)
    for node in model.extraction_units():
        node.module.bias = None
    train_classifier(model, x_train, ds.y_train, TrainConfig(epochs=6, seed=2))
    config = ExtractionConfig.bwcu(3, theta=0.5)
    model.forward(x_train[:1])
    mem_map = MemoryMap(model, config)
    program = compile_bwcu(model, config, mem_map)
    x = ds.x_test[:1].reshape(1, -1)

    def run():
        machine = Machine(1 << 16, adapter=ModelAdapter(model, mem_map, x))
        machine.run(program)
        return machine

    machine = benchmark(run)
    assert machine.stats.total > 0


# -- backend sweep ---------------------------------------------------------
def resolve_bench_backends(names=None) -> dict:
    """``{name: backend}`` for the sweep: every backend that can run
    natively here by default, or an explicit name list (in which case
    an unavailable ``numba`` still runs — measuring its degraded
    numpy-fallback path is itself informative)."""
    if names is None:
        names = [n for n, ok in sorted(available_backends().items()) if ok]
    return {name: get_backend(name) for name in names}


def measure_kernel_backends(
    n_rows: int = KERNEL_ROWS,
    bits: int = KERNEL_BITS,
    backends=None,
    repeats: int = 3,
    seed: int = 0,
) -> dict:
    """Time the hot batched kernels once per backend (best of
    ``repeats``), verifying bit-identity against the numpy reference
    on every backend before trusting any timing.

    Returns a JSON-safe report keyed by backend name with per-kernel
    ``seconds`` / ``rows_per_sec`` rows, plus the
    ``tiled_over_numpy`` containment ratio the perf gate enforces.
    """
    rng = np.random.default_rng(seed)
    a = pack_bool_matrix(rng.random((n_rows, bits)) < 0.3)
    b = pack_bool_matrix(rng.random((1, bits)) < 0.3)
    n_words = a.shape[1]
    step = max(1, n_words // 4)
    offsets = np.arange(0, n_words, step, dtype=np.intp)[:4]
    reference = {
        "containment": batch_containment(a, b),
        "per_tap": segment_popcount(a & b, offsets),
        "popcount": batch_popcount(a),
    }
    kernels = {
        "containment": lambda k: k.batch_containment(a, b),
        "per_tap": lambda k: k.segment_and_popcount(a, b, offsets),
        "popcount": lambda k: k.batch_popcount(a),
    }
    report = {
        "n_rows": n_rows,
        "bits": bits,
        "n_words": int(n_words),
        "repeats": repeats,
        "cpu_count": os.cpu_count() or 1,
        "backends": {},
    }
    for name, backend in resolve_bench_backends(backends).items():
        row = {}
        for kernel_name, fn in kernels.items():
            out = fn(backend)  # warm-up pass doubles as identity check
            if not np.array_equal(out, reference[kernel_name]):
                raise RuntimeError(
                    f"backend {name!r} changed {kernel_name} results"
                )
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fn(backend)
                best = min(best, time.perf_counter() - start)
            row[kernel_name] = {
                "seconds": best,
                "rows_per_sec": n_rows / best if best > 0 else 0.0,
            }
        # report what actually computed (the numba backend may have
        # degraded to the reference kernels)
        row["effective"] = getattr(backend, "effective_name", backend.name)
        report["backends"][name] = row
    rows = report["backends"]
    if "numpy" in rows and "tiled" in rows:
        report["tiled_over_numpy"] = (
            rows["numpy"]["containment"]["seconds"]
            / rows["tiled"]["containment"]["seconds"]
        )
    return report


def render_backend_table(report: dict) -> str:
    from repro.eval import render_table

    rows = []
    for name, row in report["backends"].items():
        label = name if row["effective"] == name else (
            f"{name} (-> {row['effective']})"
        )
        rows.append((
            label,
            f"{row['containment']['rows_per_sec'] / 1e6:.1f}M",
            f"{row['per_tap']['rows_per_sec'] / 1e6:.1f}M",
            f"{row['popcount']['rows_per_sec'] / 1e6:.1f}M",
        ))
    return render_table(
        f"kernel backends: {report['n_rows']} rows x "
        f"{report['n_words']} words, best of {report['repeats']} "
        f"({report['cpu_count']} CPUs)",
        ["backend", "containment rows/s", "per-tap rows/s",
         "popcount rows/s"],
        rows,
    )


def test_micro_kernel_backend_sweep(benchmark):
    """Every runnable backend, bit-identical and timed, at a size small
    enough for CI but past the forced-tiling threshold."""
    report = benchmark.pedantic(
        lambda: measure_kernel_backends(n_rows=512, bits=64 * 64, repeats=1),
        rounds=1, iterations=1,
    )
    print()
    print(render_backend_table(report))
    assert set(report["backends"]) >= {"numpy", "tiled"}
    for row in report["backends"].values():
        assert row["containment"]["rows_per_sec"] > 0


def main(argv=None) -> int:
    """Standalone entry point for the nightly backend-sweep artifact."""
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", nargs="+", default=None,
                        choices=["numpy", "tiled", "numba"],
                        help="backends to sweep (default: every backend "
                        "that can run natively here)")
    parser.add_argument("--rows", type=int, default=KERNEL_ROWS)
    parser.add_argument("--bits", type=int, default=KERNEL_BITS)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny matrices for CI smoke runs")
    parser.add_argument("--output", default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    from _smoke import cap_kernel_sizes, smoke_requested

    if smoke_requested(args.smoke):
        args.rows, args.bits = cap_kernel_sizes(args.rows, args.bits)
    report = measure_kernel_backends(
        n_rows=args.rows, bits=args.bits,
        backends=args.backend, repeats=args.repeats,
    )
    print(render_backend_table(report))
    if report.get("tiled_over_numpy") is not None:
        print(f"tiled over numpy (containment): "
              f"{report['tiled_over_numpy']:.2f}x on "
              f"{report['cpu_count']} CPU(s) "
              f"(CI gate: >= {TILED_SPEEDUP_FLOOR}x on multi-core)")
    if args.output:
        Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
