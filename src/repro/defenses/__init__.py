"""Complementary defenses from the paper's related-work landscape.

Sec. VIII of the paper situates Ptolemy among two other defense
families and makes one integration claim this package substantiates:

* **Adversarial retraining** (refs [9], [22], [46], [69], [75]) hardens
  the model itself but "does not have the detection capability at
  inference time".  The paper states "Ptolemy can also be integrated
  with adversarial retraining"; :mod:`repro.defenses.retraining`
  implements the retraining loop and the integration.
* **Modular-redundancy detection** via input transformation (refs [10],
  [24], [67]) and activation randomization (refs [18], [73]) detects
  adversaries by re-running inference under perturbation and reading
  disagreement.  :mod:`repro.defenses.transform` and
  :mod:`repro.defenses.sap` implement one representative of each so
  benchmarks can compare their accuracy/cost against Ptolemy's.

These are *defense substrates for comparison*, not part of the Ptolemy
contribution; the Ptolemy detector itself lives in :mod:`repro.core`.
"""

from repro.defenses.retraining import (
    AdversarialTrainConfig,
    CombinedDefenseReport,
    adversarial_retrain,
    evaluate_combined_defense,
    robust_accuracy,
)
from repro.defenses.sap import StochasticActivationPruning
from repro.defenses.transform import (
    TransformDefense,
    default_transforms,
)

__all__ = [
    "AdversarialTrainConfig",
    "CombinedDefenseReport",
    "adversarial_retrain",
    "evaluate_combined_defense",
    "robust_accuracy",
    "StochasticActivationPruning",
    "TransformDefense",
    "default_transforms",
]
