"""Benchmark-suite configuration.

Each benchmark regenerates one table or figure of the paper on the
synthetic substrate and prints the same rows/series the paper reports.
Expensive state (trained models, attack sets, profiled detectors) is
cached in the Workbench, so pytest-benchmark's repeated calls measure
the detection machinery, not training.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.

Smoke mode (``pytest benchmarks/ --smoke``) shrinks every scenario to
tiny sizes and relaxes paper-shape assertions into skips, so CI can
execute every benchmark script end-to-end in minutes: imports, data
plumbing, and table rendering can never silently rot, while the
quantitative claims stay bound to full-size runs.
"""

import sys
from pathlib import Path

# Make the in-repo package importable from any working directory —
# pytest (and CI) must not depend on the invoker exporting PYTHONPATH.
_HERE = Path(__file__).resolve().parent
for _entry in (_HERE.parent / "src", _HERE):
    if str(_entry) not in sys.path:
        sys.path.insert(0, str(_entry))

import pytest

from _smoke import activate_smoke, cap_workers, smoke_requested


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="tiny-sizes mode: shrink scenarios, relax paper-shape "
        "assertions into skips (plumbing check only; REPRO_SMOKE=1 "
        "in the environment turns this on too)",
    )
    parser.addoption(
        "--workers",
        type=int,
        default=4,
        help="worker-pool ceiling for the runtime scaling benchmark "
        "(smoke mode caps this at 2 so CI stays within time limits)",
    )


def _smoke_active(config) -> bool:
    return smoke_requested(config.getoption("--smoke"))


def pytest_configure(config):
    if _smoke_active(config):
        activate_smoke()
        # Smoke runs exist to check plumbing, not scaling curves: cap
        # the worker pool too, so the scaling benchmark never spawns a
        # 4-process fleet inside a CI time budget.
        config.option.workers = cap_workers(config.option.workers)


@pytest.fixture(scope="session")
def smoke(request):
    """True when the suite runs in tiny-sizes smoke mode."""
    return _smoke_active(request.config)


@pytest.fixture(scope="session")
def max_workers(request):
    """Largest worker pool the scaling benchmark may spawn."""
    return max(1, request.config.getoption("--workers"))


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    """In smoke mode a failed paper-shape assertion is a skip, not a
    failure: tiny substrates cannot support the quantitative claims,
    only exercise the code paths.

    This relaxation covers *every* AssertionError, so correctness
    contracts that must hold even at tiny sizes (batch equivalence,
    accounting sanity) should raise RuntimeError instead of asserting —
    see bench_runtime_throughput for the pattern."""
    try:
        return (yield)
    except AssertionError as exc:
        if _smoke_active(item.config):
            pytest.skip(f"paper-shape assertion relaxed in smoke mode: {exc}")
        raise


def pytest_collection_modifyitems(items):
    """Keep benchmark ordering stable (fig/table number order)."""
    items.sort(key=lambda item: item.fspath.basename)
