"""Adaptive SLO-aware batching tests: the control law (convergence,
violation backoff, clamping), the MicroBatcher-compatible buffer
surface, and the engine integration (adaptivity never changes
decisions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import AdaptiveBatcher, DetectionEngine, MicroBatcher


class TestControllerValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="slo_ms"):
            AdaptiveBatcher(0.0)
        with pytest.raises(ValueError, match="min_batch"):
            AdaptiveBatcher(10.0, min_batch=0)
        with pytest.raises(ValueError, match="max_batch"):
            AdaptiveBatcher(10.0, min_batch=8, max_batch=4)
        with pytest.raises(ValueError, match="headroom"):
            AdaptiveBatcher(10.0, headroom=1.5)
        with pytest.raises(ValueError, match="growth"):
            AdaptiveBatcher(10.0, growth=1.0)
        with pytest.raises(ValueError, match="shrink"):
            AdaptiveBatcher(10.0, shrink=1.0)
        with pytest.raises(ValueError, match="window"):
            AdaptiveBatcher(10.0, window=0)

    def test_initial_batch_is_clamped(self):
        assert AdaptiveBatcher(10.0, min_batch=16).batch_size == 16
        assert AdaptiveBatcher(10.0, max_batch=4).batch_size == 4


class TestControlLaw:
    def test_converges_to_slo_budget(self):
        """Constant per-sample cost: the size must converge to
        ~headroom * slo / per_sample and hold p95 under the SLO."""
        per_sample = 0.0005  # 0.5 ms/sample
        batcher = AdaptiveBatcher(20.0, max_batch=256, headroom=0.8)
        for _ in range(50):
            size = batcher.batch_size
            batcher.observe(size, per_sample * size)
        expected = int(0.8 * 0.020 / per_sample)  # 32
        assert abs(batcher.batch_size - expected) <= 2
        assert batcher.p95_ms() <= 20.0
        assert batcher.violations == 0

    def test_converges_to_ceiling_under_loose_slo(self):
        batcher = AdaptiveBatcher(10_000.0, max_batch=64)
        for _ in range(50):
            size = batcher.batch_size
            batcher.observe(size, 1e-4 * size)
        assert batcher.batch_size == 64

    def test_violation_triggers_fast_backoff(self):
        batcher = AdaptiveBatcher(
            20.0, max_batch=256, initial_batch=64, shrink=0.5
        )
        before = batcher.batch_size
        # one batch blows way past the SLO (e.g. a load spike)
        batcher.observe(before, 0.200)
        assert batcher.batch_size < before
        assert batcher.violations == 1

    def test_floor_holds_when_slo_is_impossible(self):
        """Per-sample cost above the whole budget: the controller pins
        the floor rather than oscillating or dying."""
        batcher = AdaptiveBatcher(1.0, min_batch=1, max_batch=64)
        for _ in range(20):
            size = batcher.batch_size
            batcher.observe(size, 0.010 * size)  # 10 ms/sample, SLO 1 ms
        assert batcher.batch_size == 1

    def test_growth_is_rate_limited(self):
        batcher = AdaptiveBatcher(
            10_000.0, max_batch=1024, initial_batch=8, growth=1.3
        )
        batcher.observe(8, 1e-5)
        # one observation may only step up by the growth factor (ceil)
        assert batcher.batch_size <= int(np.ceil(8 * 1.3))

    def test_recovers_from_the_floor_after_spike(self):
        """Regression: after violations shrink the size to 1, healthy
        observations must grow it back (round(1 * growth) == 1 would
        pin the floor forever)."""
        per_sample = 0.0005  # healthy cost: optimum is ~32
        batcher = AdaptiveBatcher(
            20.0, max_batch=256, initial_batch=8, headroom=0.8
        )
        for _ in range(4):  # load spike: every batch blows the SLO
            batcher.observe(batcher.batch_size, 0.500)
        assert batcher.batch_size == 1
        for _ in range(40):  # load returns to normal
            size = batcher.batch_size
            batcher.observe(size, per_sample * size)
        assert batcher.batch_size >= 16, "controller stuck at the floor"
        assert batcher.p95_ms() <= 20.0

    def test_observe_ignores_degenerate_inputs(self):
        batcher = AdaptiveBatcher(10.0)
        before = batcher.batch_size
        assert batcher.observe(0, 1.0) == before
        assert batcher.observations == 0
        batcher.observe(4, -5.0)  # negative duration clamps to zero
        assert batcher.observations == 1

    def test_empty_window_reports_zero(self):
        batcher = AdaptiveBatcher(10.0)
        assert batcher.p95_ms() == 0.0
        assert batcher.per_sample_ms() == 0.0

    def test_snapshot_is_json_safe(self):
        import json

        batcher = AdaptiveBatcher(25.0, max_batch=128)
        batcher.observe(8, 0.004)
        snapshot = batcher.snapshot()
        json.dumps(snapshot)  # must not raise
        assert snapshot["slo_ms"] == 25.0
        assert snapshot["observations"] == 1
        assert snapshot["batch_size"] >= 1
        assert snapshot["per_sample_ms"] == pytest.approx(0.5)


class TestBufferSurface:
    def test_add_flushes_at_dynamic_threshold(self):
        batcher = AdaptiveBatcher(10.0, initial_batch=2, max_batch=64)
        assert batcher.add(np.zeros(3)) is None
        batch = batcher.add(np.ones(3))
        assert batch is not None and batch.shape == (2, 3)
        assert batcher.pending == 0
        # loosen the target: the threshold moves with the controller
        for _ in range(10):
            batcher.observe(batcher.batch_size, 1e-5)
        assert batcher.batch_size > 2
        assert batcher.add(np.zeros(3)) is None
        assert batcher.add(np.zeros(3)) is None
        assert batcher.pending == 2

    def test_shape_mismatch_rejected(self):
        batcher = AdaptiveBatcher(10.0)
        batcher.add(np.zeros(3))
        with pytest.raises(ValueError, match="shape"):
            batcher.add(np.zeros(5))

    def test_flush_resets_even_on_failure(self):
        batcher = AdaptiveBatcher(10.0)
        batcher.add(np.zeros(3))
        batcher._pending.append(np.zeros(5))  # corrupt behind the guard
        with pytest.raises(ValueError):
            batcher.flush()
        assert batcher.pending == 0
        assert batcher.flush() is None

    def test_iter_chunks_covers_input(self):
        batcher = AdaptiveBatcher(10.0, initial_batch=4, max_batch=4)
        xs = np.arange(10).reshape(10, 1)
        chunks = list(batcher.iter_chunks(xs))
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert np.array_equal(np.concatenate(chunks), xs)
        assert list(batcher.iter_chunks(xs[:0])) == []


class TestMicroBatcherFlushReset:
    def test_flush_resets_even_on_failure(self):
        """Regression: a failing flush (e.g. the final partial batch
        rejected downstream) must still reset the buffer, or the next
        stream inherits stale samples."""
        batcher = MicroBatcher(8)
        batcher.add(np.zeros(3))
        batcher._pending.append(np.zeros(5))  # corrupt behind the guard
        with pytest.raises(ValueError):
            batcher.flush()
        assert batcher.pending == 0
        assert batcher.flush() is None
        # the batcher is fully usable again
        batcher.add(np.ones(4))
        tail = batcher.flush()
        assert tail.shape == (1, 4)


class TestEngineAdaptive:
    def test_adaptive_run_is_bit_identical(
        self, serving_detector, small_dataset
    ):
        xs = small_dataset.x_test[:20]
        fixed = DetectionEngine(serving_detector, batch_size=8).run(xs)
        engine = DetectionEngine(
            serving_detector, batch_size=8, slo_ms=500.0
        )
        adaptive = engine.run(xs)
        assert np.array_equal(adaptive.scores, fixed.scores)
        assert np.array_equal(
            adaptive.predicted_classes, fixed.predicted_classes
        )
        assert np.array_equal(
            adaptive.is_adversarial, fixed.is_adversarial
        )
        # every processed batch fed the controller
        assert engine.adaptive.observations == adaptive.stats.batches

    def test_adaptive_streaming_front_end(
        self, serving_detector, small_dataset
    ):
        """submit/flush runs through the adaptive buffer and still
        matches the fixed-batch engine decision for decision."""
        xs = small_dataset.x_test[:10]
        reference = DetectionEngine(serving_detector, batch_size=4).run(xs)
        engine = DetectionEngine(
            serving_detector, batch_size=4, slo_ms=500.0
        )
        streamed = engine.run_stream(iter(xs))
        assert np.array_equal(streamed.scores, reference.scores)

    def test_tight_slo_shrinks_batches(self, serving_detector, small_dataset):
        """An SLO below one batch's cost must push the size toward the
        floor (and count violations) rather than stay at the ceiling."""
        xs = small_dataset.x_test[:20]
        engine = DetectionEngine(
            serving_detector, batch_size=16, slo_ms=1e-3
        )
        engine.run(xs)
        assert engine.adaptive.batch_size == 1
        assert engine.adaptive.violations > 0
