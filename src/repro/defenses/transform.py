"""Input-transformation (prediction-inconsistency) detection.

Representative of the paper's "input transformation" related-work
class (refs [10], [24], [67]): run inference once on the raw input and
once per transformed copy, and score the input by how much the output
distribution moves.  Benign inputs are robust to mild transformations;
adversarial perturbations, being near-minimal, tend not to survive
them, so the prediction shifts.

This is a *modular redundancy* scheme: each transform costs one extra
full inference, which is exactly the overhead structure (N+1 passes)
the paper contrasts Ptolemy's 2% against.  :meth:`TransformDefense.
inference_multiplier` exposes that cost to the benchmarks.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.metrics import roc_auc
from repro.data.corruptions import gaussian_blur, quantize_depth
from repro.nn.functional import softmax
from repro.nn.graph import Graph

__all__ = ["TransformDefense", "default_transforms"]

#: A transform maps a (N, C, H, W) image batch in [0, 1] to the same.
Transform = Callable[[np.ndarray], np.ndarray]


def default_transforms(seed: int = 0) -> List[Tuple[str, Transform]]:
    """The classic feature-squeezing pair: bit-depth reduction and a
    mild blur (Xu et al.; the paper's refs [24], [67] use the same
    family)."""
    del seed  # both squeezers are deterministic; kept for symmetry
    return [
        ("depth-4bit", lambda x: quantize_depth(x, severity=2)),
        ("blur-mild", lambda x: gaussian_blur(x, severity=1)),
    ]


class TransformDefense:
    """Prediction-inconsistency detector over a set of input transforms.

    The score of an input is the maximum L1 distance between the
    softmax outputs of the raw input and of each transformed copy —
    the feature-squeezing decision rule.  ``evaluate_auc`` mirrors
    :meth:`repro.core.detector.PtolemyDetector.evaluate_auc` so the
    benchmarks can swap detectors freely.
    """

    name = "transform"

    def __init__(
        self,
        model: Graph,
        transforms: Optional[Sequence[Tuple[str, Transform]]] = None,
    ):
        self.model = model
        self.transforms = (
            default_transforms() if transforms is None else list(transforms)
        )
        if not self.transforms:
            raise ValueError("TransformDefense needs at least one transform")

    @property
    def inference_multiplier(self) -> int:
        """Total inference passes per input (raw + one per transform)."""
        return 1 + len(self.transforms)

    def score(self, x: np.ndarray) -> float:
        """Inconsistency score for one input (batch of one)."""
        return float(self.scores_for_set(x)[0])

    def scores_for_set(self, xs: np.ndarray) -> np.ndarray:
        """Vectorized scores for a batch of inputs."""
        xs = np.asarray(xs, dtype=np.float64)
        base = softmax(self.model.forward(xs))
        worst = np.zeros(xs.shape[0])
        for _, transform in self.transforms:
            probs = softmax(self.model.forward(transform(xs)))
            distance = np.abs(probs - base).sum(axis=1)
            worst = np.maximum(worst, distance)
        return worst

    def evaluate_auc(
        self, x_benign: np.ndarray, x_adversarial: np.ndarray
    ) -> float:
        """AUC over an evenly-labelled benign/adversarial test set."""
        scores = np.concatenate(
            [self.scores_for_set(x_benign), self.scores_for_set(x_adversarial)]
        )
        labels = np.concatenate(
            [np.zeros(len(x_benign)), np.ones(len(x_adversarial))]
        )
        return roc_auc(labels, scores)

    def __repr__(self) -> str:
        names = ", ".join(name for name, _ in self.transforms)
        return f"TransformDefense([{names}])"
