"""Module and Parameter abstractions.

The framework deliberately avoids a taped autograd: every layer knows how
to compute its own backward pass from values cached during the forward
pass.  This keeps the execution model transparent, which matters here
because Ptolemy's path extraction introspects the very same cached
values (inputs, argmax indices, partial sums).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

__all__ = ["Parameter", "Module"]


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    def __init__(self, data: np.ndarray, name: str = ""):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self):
        return self.data.shape

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class for all layers.

    Subclasses implement :meth:`forward` and :meth:`backward`.  A module
    is stateless between calls except for the forward cache, which the
    matching backward call (and Ptolemy's extraction machinery) consumes.
    """

    def __init__(self):
        self.training = False
        self._cache: dict = {}

    # -- execution ----------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Return the gradient w.r.t. the input, accumulating parameter
        gradients as a side effect."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- parameter management ------------------------------------------
    def parameters(self) -> List[Parameter]:
        """All trainable parameters, in deterministic order."""
        params: List[Parameter] = []
        for value in self.__dict__.values():
            if isinstance(value, Parameter):
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
        return params

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for value in self.__dict__.values():
            if isinstance(value, Module):
                value.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- state (de)serialisation ----------------------------------------
    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for key, value in self.__dict__.items():
            if isinstance(value, Parameter):
                state[prefix + key] = value.data
            elif isinstance(value, Module):
                state.update(value.state_dict(prefix + key + "."))
        for key, value in self._buffers().items():
            state[prefix + key] = value
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], prefix: str = "") -> None:
        for key, value in list(self.__dict__.items()):
            if isinstance(value, Parameter):
                value.data = np.array(state[prefix + key], dtype=np.float64)
                value.grad = np.zeros_like(value.data)
            elif isinstance(value, Module):
                value.load_state_dict(state, prefix + key + ".")
        self._load_buffers(state, prefix)

    def _buffers(self) -> Dict[str, np.ndarray]:
        """Non-trainable persistent state (e.g. batch-norm statistics)."""
        return {}

    def _load_buffers(self, state: Dict[str, np.ndarray], prefix: str) -> None:
        pass

    # -- misc -----------------------------------------------------------
    @property
    def cache(self) -> dict:
        return self._cache

    def clear_cache(self) -> None:
        self._cache = {}

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
