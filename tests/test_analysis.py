"""Static-analyzer tests: rule fixtures, suppressions, baseline
round-trip, JSON schema, and the runtime fixes the rules drove.

The analyzer is a gate (CI `analyze` job + the lint fallback), so its
own contract needs pinning: every rule must accept its clean fixture
and reject its seeded violation, ``# repro: noqa[RPRnnn]`` must
suppress exactly the named rule, the committed baseline must
round-trip, and the tree itself must stay analyzer-clean.  The last
classes pin the three behaviour-preserving runtime fixes the first
analyzer run surfaced (transport probe unlink, narrowed release
except, ISS micro-ops through the backend registry).
"""

from __future__ import annotations

import json
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis import all_checkers, analyze_source
from repro.analysis.base import PARSE_ERROR_CODE, Finding
from repro.analysis.engine import (
    BASELINE_VERSION,
    DEFAULT_TARGETS,
    analyze_paths,
    apply_baseline,
    load_baseline,
    render_json,
    run_self_test,
    write_baseline,
)
from repro.analysis.fixtures import clean_fixtures, seeded_violations

REPO = Path(__file__).resolve().parent.parent


# -- rule fixtures ------------------------------------------------------

class TestRuleFixtures:
    @pytest.mark.parametrize(
        "fixture",
        seeded_violations(),
        ids=lambda f: f"{f.rule}-violation",
    )
    def test_seeded_violation_rejected(self, fixture):
        codes = {f.rule for f in analyze_source(fixture.path, fixture.source)}
        assert fixture.rule in codes

    @pytest.mark.parametrize(
        "fixture",
        clean_fixtures(),
        ids=lambda f: f"{f.rule}-clean",
    )
    def test_clean_fixture_accepted(self, fixture):
        findings = analyze_source(fixture.path, fixture.source)
        assert findings == []

    def test_every_rule_has_clean_and_violating_fixture(self):
        codes = {c.code for c in all_checkers()} | {PARSE_ERROR_CODE}
        assert {f.rule for f in seeded_violations()} == codes
        assert {f.rule for f in clean_fixtures()} == codes

    def test_self_test_passes(self):
        assert run_self_test(verbose=False) == 0

    def test_path_scoped_rules_skip_out_of_scope_files(self):
        # The same violating source outside the rule's scope is silent:
        # hot-path and runtime rules must not fire on e.g. core/.
        for fixture in seeded_violations():
            if fixture.rule in ("RPR101", "RPR102", "RPR103", "RPR104",
                                PARSE_ERROR_CODE):
                continue  # unscoped (or needs no scope) rules
            moved = analyze_source(
                "src/repro/core/_fx_moved.py", fixture.source
            )
            assert fixture.rule not in {f.rule for f in moved}, fixture.rule


# -- suppressions -------------------------------------------------------

class TestSuppression:
    SOURCE = (
        "def reap(worker):\n"
        "    try:\n"
        "        worker.join()\n"
        "    except:{comment}\n"
        "        worker.kill()\n"
    )
    PATH = "src/repro/runtime/_sx.py"

    def _codes(self, comment: str) -> set:
        source = self.SOURCE.format(comment=comment)
        return {f.rule for f in analyze_source(self.PATH, source)}

    def test_unsuppressed_fires(self):
        assert "RPR401" in self._codes("")

    def test_named_code_suppresses(self):
        assert "RPR401" not in self._codes("  # repro: noqa[RPR401]")

    def test_bare_noqa_suppresses_all(self):
        assert self._codes("  # repro: noqa") == set()

    def test_other_code_does_not_suppress(self):
        assert "RPR401" in self._codes("  # repro: noqa[RPR999]")

    def test_multiple_codes(self):
        assert "RPR401" not in self._codes(
            "  # repro: noqa[RPR101, RPR401]"
        )


# -- baseline -----------------------------------------------------------

class TestBaseline:
    def _findings(self):
        return [
            Finding("RPR401", "src/repro/runtime/x.py", 10, 4,
                    "bare except", "except:"),
            Finding("RPR401", "src/repro/runtime/x.py", 20, 4,
                    "bare except", "except:"),
            Finding("RPR403", "src/repro/runtime/y.py", 5, 8,
                    "silent except", "except Exception:"),
        ]

    def test_round_trip_masks_everything(self, tmp_path):
        findings = self._findings()
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        fresh, matched, stale = apply_baseline(
            findings, load_baseline(path)
        )
        assert fresh == []
        assert matched == 3
        assert stale == 0

    def test_line_drift_still_matches(self, tmp_path):
        findings = self._findings()
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        drifted = [
            Finding(f.rule, f.path, f.line + 7, f.col, f.message, f.snippet)
            for f in findings
        ]
        fresh, matched, _ = apply_baseline(drifted, load_baseline(path))
        assert fresh == []
        assert matched == 3

    def test_multiset_semantics_and_stale_entries(self, tmp_path):
        findings = self._findings()
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        # One duplicate fixed, one new duplicate appears elsewhere: the
        # budget covers exactly as many identical lines as were
        # grandfathered, and the fixed one surfaces as stale.
        remaining = findings[:1] + findings[2:]
        fresh, matched, stale = apply_baseline(
            remaining, load_baseline(path)
        )
        assert fresh == []
        assert matched == 2
        assert stale == 1

    def test_new_finding_not_masked(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, self._findings())
        new = Finding("RPR102", "src/repro/runtime/z.py", 3, 0,
                      "unpaired acquire", "slot = ring.acquire()")
        fresh, _, _ = apply_baseline([new], load_baseline(path))
        assert fresh == [new]

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            load_baseline(path)
        path.write_text(json.dumps(
            {"version": BASELINE_VERSION, "findings": [{"rule": "X"}]}
        ))
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_committed_baseline_is_empty(self):
        entries = load_baseline(REPO / "ANALYSIS_baseline.json")
        assert entries == []


# -- JSON output --------------------------------------------------------

class TestJsonOutput:
    def test_schema(self):
        findings = [
            Finding("RPR401", "a.py", 3, 0, "bare except", "except:"),
        ]
        payload = json.loads(render_json(findings, matched=2, stale=1))
        assert payload["version"] == BASELINE_VERSION
        assert payload["count"] == 1
        assert payload["baselined"] == 2
        assert payload["stale_baseline_entries"] == 1
        (entry,) = payload["findings"]
        assert set(entry) == {
            "rule", "path", "line", "col", "message", "snippet"
        }
        assert entry["rule"] == "RPR401"
        assert entry["line"] == 3

    def test_parse_error_finding(self):
        findings = analyze_source("src/x.py", "def broken(:\n    pass\n")
        assert [f.rule for f in findings] == [PARSE_ERROR_CODE]


# -- the tree itself ----------------------------------------------------

class TestTreeClean:
    def test_repo_is_analyzer_clean(self):
        # The shipped gate exactly: default targets, no baseline
        # escape hatch.  New findings fail here before they fail CI.
        findings = analyze_paths(list(DEFAULT_TARGETS), root=REPO)
        assert findings == [], "\n".join(
            f"{f.path}:{f.line}: {f.rule} {f.message}" for f in findings
        )


# -- pins for the analyzer-driven runtime fixes -------------------------

class TestRuntimeFixes:
    def test_shm_probe_unlinks_in_finally(self):
        # RPR101 fix: the probe source itself must carry the
        # finally-unlink shape, not just dodge the rule.
        source = (REPO / "src/repro/runtime/transport.py").read_text()
        findings = analyze_source("src/repro/runtime/transport.py", source)
        assert [f for f in findings if f.rule == "RPR101"] == []

    def test_release_slot_swallows_only_transport_errors(self):
        from repro.runtime.service import ShardedDetectionService
        from repro.runtime.transport import TransportError

        svc = ShardedDetectionService.__new__(ShardedDetectionService)

        calls = []

        def torn_down(slot):
            calls.append(slot)
            raise TransportError("ring destroyed")

        shard = SimpleNamespace(slabs=SimpleNamespace(release=torn_down))
        # RPR403 fix: the teardown race stays silent...
        svc._release_slot(shard, 3)
        svc._release_slot(shard, (1, 2))
        assert calls == [3, 1, 2]

        def broken(slot):
            raise RuntimeError("real bug")

        shard = SimpleNamespace(slabs=SimpleNamespace(release=broken))
        # ...but a genuine programming error now propagates.
        with pytest.raises(RuntimeError):
            svc._release_slot(shard, 0)

    def test_batch_kernel_unit_routes_through_backend(self):
        # RPR201 fix: the ISS batch unit takes a KernelBackend and an
        # explicit backend instance reproduces the default bit-exactly.
        from repro.compiler.codegen import compile_batch_containment
        from repro.core.backends import get_backend
        from repro.isa.machine import BatchKernelUnit

        rng = np.random.default_rng(7)
        acts = rng.integers(0, 2**64, size=(9, 5), dtype=np.uint64)
        canary = rng.integers(0, 2**64, size=(1, 5), dtype=np.uint64)
        schedule = compile_batch_containment(
            n_rows=9, n_words=5, tile_rows=4
        )

        default_unit = BatchKernelUnit()
        explicit_unit = BatchKernelUnit(kernels=get_backend("numpy"))
        assert default_unit.kernels.name == "numpy"

        base = default_unit.run_containment(schedule, acts, canary)
        same = explicit_unit.run_containment(schedule, acts, canary)
        np.testing.assert_array_equal(base, same)
        assert default_unit.trace == explicit_unit.trace
