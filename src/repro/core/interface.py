"""The Ptolemy programming interface (Sec. III-D, Fig. 6).

Programmers express a detection algorithm as a sequence of per-layer
``ExtractImptNeurons`` calls; the builder validates the paper's rules
(direction uniformity across the network) and lowers the program to an
:class:`~repro.core.config.ExtractionConfig`, which both the software
extractor and the compiler consume.

Example (the exact algorithm of Fig. 6 — forward extraction on the
last three layers, cumulative threshold only on the final layer)::

    program = DetectionProgram(num_layers=model.num_extraction_units())
    n = program.num_layers
    for layer in range(n - 3, n):
        if layer != n - 1:
            program.extract_important_neurons(layer, forward=True,
                                              absolute=True, threshold=phi)
        else:
            program.extract_important_neurons(layer, forward=True,
                                              absolute=False, threshold=theta)
    config = program.build()
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import (
    Direction,
    ExtractionConfig,
    LayerSpec,
    Thresholding,
)

__all__ = ["DetectionProgram", "fig6_program"]


class DetectionProgram:
    """Builder mirroring the Fig. 6 programming interface."""

    def __init__(self, num_layers: int):
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.num_layers = num_layers
        self._specs: Dict[int, LayerSpec] = {}
        self._direction: Optional[Direction] = None

    def extract_important_neurons(
        self,
        layer: int,
        forward: bool,
        absolute: bool,
        threshold: float,
    ) -> "DetectionProgram":
        """Declare extraction for one layer (0-based index).

        Mirrors ``ExtractImptNeurons(direction, mechanism, threshold, L)``.
        Mixing forward and backward extraction in one network is
        rejected, as in the paper (Sec. III-D).
        """
        if not 0 <= layer < self.num_layers:
            raise ValueError(
                f"layer must be in 0..{self.num_layers - 1}, got {layer}"
            )
        if layer in self._specs:
            raise ValueError(f"layer {layer} already configured")
        direction = Direction.FORWARD if forward else Direction.BACKWARD
        if self._direction is None:
            self._direction = direction
        elif direction is not self._direction:
            raise ValueError(
                "backward and forward extraction cannot be combined in one "
                "network (Ptolemy Sec. III-D)"
            )
        mechanism = Thresholding.ABSOLUTE if absolute else Thresholding.CUMULATIVE
        self._specs[layer] = LayerSpec(mechanism, threshold, extract=True)
        return self

    def build(self) -> ExtractionConfig:
        """Lower the program to an ExtractionConfig."""
        if not self._specs:
            raise ValueError("program extracts no layers")
        layers: List[LayerSpec] = []
        for i in range(self.num_layers):
            spec = self._specs.get(i)
            if spec is None:
                # unconfigured layers are skipped (selective extraction)
                layers.append(
                    LayerSpec(Thresholding.ABSOLUTE, 0.0, extract=False)
                )
            else:
                layers.append(spec)
        assert self._direction is not None
        return ExtractionConfig(self._direction, layers)


def fig6_program(
    num_layers: int, theta: float = 0.5, phi: float = 0.0
) -> ExtractionConfig:
    """The exact algorithm shown in Fig. 6: forward extraction on the
    last three layers; absolute thresholds except the final layer,
    which uses a cumulative threshold."""
    program = DetectionProgram(num_layers)
    for layer in range(max(num_layers - 3, 0), num_layers):
        last = layer == num_layers - 1
        program.extract_important_neurons(
            layer, forward=True, absolute=not last,
            threshold=theta if last else phi,
        )
    return program.build()
