"""DeepFense baseline — modular redundancy (Rouhani et al., ICCAD 2018).

DeepFense trains N redundant *latent defender* modules; each learns
the probability density of benign data in a latent space and scores
inputs by how far outside that density they fall.  The paper compares
against the three default variants: DFL (1 defender), DFM (8), DFH
(16).

Each defender here models the benign distribution of a random
projection of an intermediate feature map as a Gaussian (the original
uses GMM-shaped latent defenders; one component per defender, with
defender diversity coming from the projections, preserves the
redundancy structure).  The anomaly score is the max Mahalanobis
distance across defenders.  Cost follows the modular-redundancy
structure: every defender re-runs a fixed fraction of the victim
network's inference work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.metrics import roc_auc
from repro.nn import Graph

__all__ = ["DeepFenseDetector", "deepfense_overheads", "DEEPFENSE_VARIANTS"]

#: defender counts for the paper's three default variants
DEEPFENSE_VARIANTS = {"DFL": 1, "DFM": 8, "DFH": 16}


@dataclass
class _Defender:
    """One latent defender: a Gaussian density over a random projection."""

    projection: np.ndarray
    mean: np.ndarray
    cov_inv: np.ndarray
    calib_mean: float = 0.0
    calib_std: float = 1.0


class DeepFenseDetector:
    """N-module latent-defender anomaly detector."""

    def __init__(
        self,
        model: Graph,
        num_defenders: int = 8,
        latent_node: Optional[str] = None,
        projection_dim: int = 12,
        seed: int = 0,
    ):
        if num_defenders < 1:
            raise ValueError("need at least one defender")
        self.model = model
        self.num_defenders = num_defenders
        # default latent tap: input of the final (logits) layer
        units = model.extraction_units()
        self.latent_node = latent_node or units[-1].inputs[0]
        self.projection_dim = projection_dim
        self._rng = np.random.default_rng(seed)
        self.defenders: List[_Defender] = []

    # -- latent features --------------------------------------------------
    def _latent(self, x: np.ndarray) -> np.ndarray:
        self.model.forward(x)
        acts = self.model.activations[self.latent_node]
        return acts.reshape(acts.shape[0], -1)

    # -- training ----------------------------------------------------------
    def fit(self, x_benign: np.ndarray) -> "DeepFenseDetector":
        """Fit each defender's benign density on clean data only."""
        latent = self._latent(np.asarray(x_benign, dtype=np.float64))
        dim = latent.shape[1]
        proj_dim = min(self.projection_dim, dim)
        self.defenders = []
        for _ in range(self.num_defenders):
            proj = self._rng.normal(
                0.0, 1.0 / np.sqrt(dim), size=(dim, proj_dim)
            )
            z = latent @ proj
            mean = z.mean(axis=0)
            centered = z - mean
            cov = centered.T @ centered / max(len(z) - 1, 1)
            cov += 1e-6 * np.trace(cov) / proj_dim * np.eye(proj_dim)
            cov_inv = np.linalg.inv(cov)
            dists = np.sqrt(np.einsum("ni,ij,nj->n", centered, cov_inv, centered))
            self.defenders.append(
                _Defender(
                    projection=proj,
                    mean=mean,
                    cov_inv=cov_inv,
                    calib_mean=float(dists.mean()),
                    calib_std=float(dists.std() + 1e-12),
                )
            )
        return self

    # -- scoring ------------------------------------------------------------
    def score(self, x: np.ndarray) -> float:
        """Max calibrated Mahalanobis distance across defenders."""
        if not self.defenders:
            raise RuntimeError("DeepFense detector not fitted")
        latent = self._latent(x)
        scores = []
        for d in self.defenders:
            z = latent @ d.projection - d.mean
            dist = float(np.sqrt(np.einsum("ni,ij,nj->n", z, d.cov_inv, z)[0]))
            scores.append((dist - d.calib_mean) / d.calib_std)
        return float(max(scores))

    def evaluate_auc(
        self, x_benign: np.ndarray, x_adversarial: np.ndarray
    ) -> float:
        scores = np.array(
            [self.score(x[None]) for x in x_benign]
            + [self.score(x[None]) for x in x_adversarial]
        )
        labels = np.concatenate(
            [np.zeros(len(x_benign)), np.ones(len(x_adversarial))]
        )
        return roc_auc(labels, scores)


def deepfense_overheads(
    num_defenders: int, defender_fraction: float = 0.19
) -> dict:
    """Modular-redundancy cost: each defender re-runs a fixed fraction
    of the victim network's work on the same accelerator.

    ``defender_fraction`` is calibrated so DFL's latency overhead sits
    ~19% above inference, consistent with Fig. 12b, where FwAb's 2.1%
    overhead is an 89% reduction relative to DFL.
    """
    if num_defenders < 1:
        raise ValueError("need at least one defender")
    latency = 1.0 + num_defenders * defender_fraction
    energy = 1.0 + num_defenders * defender_fraction
    return {"latency_overhead": latency, "energy_overhead": energy}
