"""Unit tests for the Linear layer and its introspection protocol."""

import numpy as np
import pytest

from repro.nn.layers import Linear


@pytest.fixture
def layer():
    return Linear(6, 4, rng=np.random.default_rng(0))


class TestForward:
    def test_matches_matmul(self, layer, rng):
        x = rng.normal(size=(3, 6))
        out = layer.forward(x)
        expected = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(out, expected)

    def test_shape_validation(self, layer):
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 5)))

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            Linear(0, 3)


class TestBackward:
    def test_input_gradient_matches_numerical(self, layer, rng, numgrad):
        x = rng.normal(size=(2, 6))
        target = rng.normal(size=(2, 4))

        def loss(xv):
            return float(((layer.forward(xv) - target) ** 2).sum())

        layer.forward(x)
        grad_out = 2.0 * (layer.forward(x) - target)
        analytic = layer.backward(grad_out)
        numeric = numgrad(loss, x.copy())
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_weight_gradient_accumulates(self, layer, rng):
        x = rng.normal(size=(2, 6))
        layer.forward(x)
        layer.backward(np.ones((2, 4)))
        first = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(np.ones((2, 4)))
        assert np.allclose(layer.weight.grad, 2 * first)


class TestIntrospection:
    def test_receptive_field_is_full_input(self, layer):
        assert np.array_equal(layer.receptive_field(2), np.arange(6))

    def test_receptive_field_bounds(self, layer):
        with pytest.raises(IndexError):
            layer.receptive_field(4)

    def test_partial_sums_reconstruct_output(self, layer, rng):
        """sum(psums) + bias == output neuron value (Fig. 3 semantics)."""
        x = rng.normal(size=(1, 6))
        out = layer.forward(x)
        for j in range(4):
            psums = layer.partial_sums(j)
            assert psums.shape == (6,)
            assert psums.sum() + layer.bias.data[j] == pytest.approx(out[0, j])

    def test_mac_count(self, layer):
        assert layer.mac_count() == 24
        assert layer.nominal_rf_size() == 6
