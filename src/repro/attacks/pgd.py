"""PGD — projected gradient descent (Madry et al., 2017).

BIM with a random start inside the epsilon ball; the optimizer the
paper uses to construct its adaptive attacks (Sec. VII-E).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, input_gradient
from repro.nn.graph import Graph

__all__ = ["PGD"]


class PGD(Attack):
    """Projected gradient descent: random start + iterative L-inf
    steps projected back onto the eps ball (module docstring)."""

    name = "pgd"
    norm = "linf"

    def __init__(
        self,
        eps: float = 0.06,
        alpha: float = 0.015,
        steps: int = 15,
        random_start: bool = True,
        seed: int = 0,
    ):
        if eps <= 0 or alpha <= 0 or steps < 1:
            raise ValueError("invalid PGD parameters")
        self.eps = eps
        self.alpha = alpha
        self.steps = steps
        self.random_start = random_start
        self._rng = np.random.default_rng(seed)

    def perturb(self, model: Graph, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        if self.random_start:
            x_adv = self._clip(
                x + self._rng.uniform(-self.eps, self.eps, size=x.shape)
            )
        else:
            x_adv = x.copy()
        for _ in range(self.steps):
            grad = input_gradient(model, x_adv, y)
            x_adv = x_adv + self.alpha * np.sign(grad)
            x_adv = np.clip(x_adv, x - self.eps, x + self.eps)
            x_adv = self._clip(x_adv)
        return x_adv
