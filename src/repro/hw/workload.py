"""Static per-layer workload descriptors extracted from a model.

The timing model never touches numpy weights; it consumes these shape
summaries (MAC counts, word counts) plus the data-dependent
:class:`~repro.core.trace.ExtractionTrace` measured by the extractor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.nn.graph import Graph
from repro.nn.layers import Conv2d, Linear

__all__ = ["LayerWorkload", "ModelWorkload", "model_workload"]


@dataclass(frozen=True)
class LayerWorkload:
    """Shape summary of one extraction unit."""

    name: str
    index: int
    macs: int
    weight_words: int
    in_words: int
    out_words: int
    rf_size: int

    @property
    def psum_count(self) -> int:
        """Partial sums generated during this layer's inference — one
        per MAC (Sec. III-B's memory-cost analysis counts these)."""
        return self.macs


@dataclass(frozen=True)
class ModelWorkload:
    """All unit workloads of a model, in topological order."""

    name: str
    layers: List[LayerWorkload]

    @property
    def total_macs(self) -> int:
        return sum(l.macs for l in self.layers)

    @property
    def total_weight_words(self) -> int:
        return sum(l.weight_words for l in self.layers)

    @property
    def total_psums(self) -> int:
        return sum(l.psum_count for l in self.layers)

    def layer(self, index: int) -> LayerWorkload:
        return self.layers[index]


def model_workload(model: Graph) -> ModelWorkload:
    """Build the workload descriptor (requires a prior forward pass so
    convolution feature-map shapes are known)."""
    layers: List[LayerWorkload] = []
    for i, node in enumerate(model.extraction_units()):
        module = node.module
        if isinstance(module, Conv2d):
            weight_words = module.weight.data.size
        elif isinstance(module, Linear):
            weight_words = module.weight.data.size
        else:  # pragma: no cover - extraction_units returns conv/linear only
            raise TypeError(f"unexpected unit type {type(module)}")
        layers.append(
            LayerWorkload(
                name=node.name,
                index=i,
                macs=module.mac_count(),
                weight_words=weight_words,
                in_words=module.input_feature_size,
                out_words=module.output_feature_size,
                rf_size=module.nominal_rf_size(),
            )
        )
    return ModelWorkload(model.name, layers)
