"""Persistence for class paths and fitted detectors.

The paper's deployment stores offline-generated canary class paths and
reuses them over time (Fig. 4); this module provides that storage:
class-path sets serialise to ``.npz`` archives, and whole detectors
(config + class paths + forest) to a directory.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.bitmask import Bitmask
from repro.core.classifier import RandomForest
from repro.core.classifier.tree import DecisionTree, _TreeNode
from repro.core.config import Direction, ExtractionConfig, LayerSpec, Thresholding
from repro.core.path import ClassPath, PathLayout
from repro.core.profiling import ClassPathSet

__all__ = [
    "save_class_paths",
    "load_class_paths",
    "config_to_dict",
    "config_from_dict",
    "save_detector",
    "load_detector",
]

_PathLike = Union[str, os.PathLike]


# -- class paths -----------------------------------------------------------

def save_class_paths(class_paths: ClassPathSet, path: _PathLike) -> None:
    """Write a ClassPathSet to an ``.npz`` archive."""
    layout = class_paths.layout
    arrays = {
        "tap_names": np.array(layout.tap_names),
        "tap_sizes": np.array(layout.tap_sizes, dtype=np.int64),
        "class_ids": np.array(sorted(class_paths.paths), dtype=np.int64),
    }
    for cid in sorted(class_paths.paths):
        canary = class_paths.path_for(cid)
        arrays[f"class{cid}_samples"] = np.array(canary.num_samples)
        for tap_i, mask in enumerate(canary.masks):
            arrays[f"class{cid}_tap{tap_i}"] = mask.to_bool()
    np.savez_compressed(path, **arrays)


def load_class_paths(path: _PathLike) -> ClassPathSet:
    """Read a ClassPathSet written by :func:`save_class_paths`."""
    with np.load(path, allow_pickle=False) as data:
        layout = PathLayout(
            tuple(str(n) for n in data["tap_names"]),
            tuple(int(s) for s in data["tap_sizes"]),
        )
        class_paths = ClassPathSet(layout)
        for cid in data["class_ids"]:
            cid = int(cid)
            canary = ClassPath(layout, cid)
            canary.num_samples = int(data[f"class{cid}_samples"])
            canary.masks = [
                Bitmask.from_bool(data[f"class{cid}_tap{tap_i}"])
                for tap_i in range(layout.num_taps)
            ]
            class_paths.paths[cid] = canary
    return class_paths


# -- extraction configs ------------------------------------------------------

def config_to_dict(config: ExtractionConfig) -> dict:
    """JSON-safe representation of an ExtractionConfig."""
    return {
        "direction": config.direction.value,
        "layers": [
            {
                "mechanism": spec.mechanism.value,
                "threshold": spec.threshold,
                "extract": spec.extract,
            }
            for spec in config.layers
        ],
    }


def config_from_dict(data: dict) -> ExtractionConfig:
    """Inverse of :func:`config_to_dict`."""
    return ExtractionConfig(
        Direction(data["direction"]),
        [
            LayerSpec(
                Thresholding(layer["mechanism"]),
                float(layer["threshold"]),
                bool(layer["extract"]),
            )
            for layer in data["layers"]
        ],
    )


# -- random forest -----------------------------------------------------------

def _tree_to_lists(tree: DecisionTree) -> dict:
    """Flatten a tree into parallel arrays (preorder) — the same array
    form the batched evaluator uses."""
    return tree.flatten()


def _tree_from_lists(data: dict, meta: dict) -> DecisionTree:
    def build(idx: int):
        node = _TreeNode(
            feature=int(data["feature"][idx]),
            threshold=float(data["threshold"][idx]),
            probability=float(data["probability"][idx]),
        )
        if data["left"][idx] >= 0:
            node.left = build(int(data["left"][idx]))
            node.right = build(int(data["right"][idx]))
        return node

    tree = DecisionTree(max_depth=meta["max_depth"])
    tree._root = build(0)
    tree.node_count = len(data["feature"])
    tree.depth = meta["max_depth"]
    return tree


# -- whole detectors ------------------------------------------------------

def save_detector(detector, directory: _PathLike) -> None:
    """Persist a fitted PtolemyDetector (class paths, config, forest).

    The model itself is saved separately with :func:`repro.nn.save_model`;
    a detector directory is only valid with its matching model.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if detector.class_paths is None:
        raise ValueError("detector has no class paths to save")
    save_class_paths(detector.class_paths, directory / "class_paths.npz")
    meta = {
        "feature_mode": detector.feature_mode,
        "config": config_to_dict(detector.config),
        "fitted": detector._fitted,
        "forest": {
            "n_trees": detector.forest.n_trees,
            "max_depth": detector.forest.max_depth,
            "seed": detector.forest.seed,
        },
    }
    (directory / "detector.json").write_text(json.dumps(meta, indent=2))
    if detector._fitted:
        arrays = {}
        for i, tree in enumerate(detector.forest.trees):
            for key, value in _tree_to_lists(tree).items():
                arrays[f"tree{i}_{key}"] = value
        np.savez_compressed(directory / "forest.npz", **arrays)


def load_detector(model, directory: _PathLike):
    """Rebuild a PtolemyDetector saved by :func:`save_detector`."""
    from repro.core.detector import PtolemyDetector

    directory = Path(directory)
    meta = json.loads((directory / "detector.json").read_text())
    config = config_from_dict(meta["config"])
    detector = PtolemyDetector(
        model,
        config,
        feature_mode=meta["feature_mode"],
        n_trees=meta["forest"]["n_trees"],
        max_depth=meta["forest"]["max_depth"],
        seed=meta["forest"]["seed"],
    )
    detector.class_paths = load_class_paths(directory / "class_paths.npz")
    # fix the extractor layout without re-profiling
    detector.extractor._layout = detector.class_paths.layout
    if meta["fitted"]:
        forest = RandomForest(
            n_trees=meta["forest"]["n_trees"],
            max_depth=meta["forest"]["max_depth"],
            seed=meta["forest"]["seed"],
        )
        with np.load(directory / "forest.npz") as data:
            trees = []
            for i in range(forest.n_trees):
                tree_data = {
                    key: data[f"tree{i}_{key}"]
                    for key in ("feature", "threshold", "left", "right",
                                "probability")
                }
                trees.append(
                    _tree_from_lists(tree_data,
                                     {"max_depth": forest.max_depth})
                )
            forest.trees = trees
        detector.forest = forest
        detector._fitted = True
    return detector
