"""Self-test fixtures: one clean and one violating source per rule.

The sources live here as strings (not files on disk) so the seeded
violations never show up in real analyzer runs, pytest collection, or
ruff.  Each fixture carries the synthetic repo-relative path the
analyzer should pretend the source lives at — path-scoped rules
(RPR2xx/RPR3xx/RPR4xx) only fire when the path matches their scope.

``--self-test`` must accept every clean fixture (zero findings for the
fixture's rule) and reject every violating one (at least one finding
with exactly that code); ``tests/test_analysis.py`` walks the same
table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class Fixture:
    rule: str
    kind: str  # "clean" | "violation"
    path: str  # synthetic repo-relative path the source pretends to be
    source: str


FIXTURES: List[Fixture] = [
    # -- RPR101: shm lifecycle -----------------------------------------
    Fixture(
        "RPR101", "violation", "src/repro/runtime/_fx_shm.py",
        '''\
from multiprocessing import shared_memory


def probe() -> bool:
    try:
        seg = shared_memory.SharedMemory(create=True, size=64)
        seg.close()
        seg.unlink()
        return True
    except Exception:
        return False
''',
    ),
    Fixture(
        "RPR101", "clean", "src/repro/runtime/_fx_shm.py",
        '''\
from multiprocessing import shared_memory


def probe() -> bool:
    try:
        seg = shared_memory.SharedMemory(create=True, size=64)
        try:
            seg.close()
        finally:
            seg.unlink()
        return True
    except OSError:
        return False


class Ring:
    def __init__(self, size: int):
        self._shm = shared_memory.SharedMemory(create=True, size=size)

    def destroy(self) -> None:
        self._shm.close()
        self._shm.unlink()
''',
    ),
    # -- RPR102: slab acquire/release pairing --------------------------
    Fixture(
        "RPR102", "violation", "src/repro/runtime/_fx_slab.py",
        '''\
def send(ring, batch):
    slot = ring.acquire()
    ring.write(slot, batch)
    return slot
''',
    ),
    Fixture(
        "RPR102", "clean", "src/repro/runtime/_fx_slab.py",
        '''\
def send(ring, batch):
    slot = ring.acquire()
    try:
        ring.write(slot, batch)
    finally:
        ring.release(slot)
''',
    ),
    # -- RPR103: lock discipline ---------------------------------------
    Fixture(
        "RPR103", "violation", "src/repro/runtime/_fx_lock.py",
        '''\
import threading

_lock = threading.Lock()


def bump(counters, key):
    _lock.acquire()
    counters[key] += 1
    _lock.release()
''',
    ),
    Fixture(
        "RPR103", "clean", "src/repro/runtime/_fx_lock.py",
        '''\
import threading

_lock = threading.Lock()


def bump(counters, key):
    with _lock:
        counters[key] += 1


def bump_legacy(counters, key):
    _lock.acquire()
    try:
        counters[key] += 1
    finally:
        _lock.release()
''',
    ),
    # -- RPR104: module globals written from worker entry points -------
    Fixture(
        "RPR104", "violation", "src/repro/runtime/_fx_worker.py",
        '''\
_BATCHES = 0


def _worker_loop(inbox, outbox):
    global _BATCHES
    for item in iter(inbox.get, None):
        _BATCHES += 1
        outbox.put(item)
''',
    ),
    Fixture(
        "RPR104", "clean", "src/repro/runtime/_fx_worker.py",
        '''\
def _worker_loop(inbox, outbox):
    batches = 0
    for item in iter(inbox.get, None):
        batches += 1
        outbox.put(item)
    return batches
''',
    ),
    # -- RPR201: backend bypass ----------------------------------------
    Fixture(
        "RPR201", "violation", "src/repro/isa/_fx_kernel.py",
        '''\
import numpy as np


def tile_popcount(words):
    return np.bitwise_count(words).sum(axis=1)
''',
    ),
    Fixture(
        "RPR201", "clean", "src/repro/isa/_fx_kernel.py",
        '''\
def tile_popcount(words, kernels=None):
    if kernels is None:
        from repro.core.backends import get_backend

        kernels = get_backend("numpy")
    return kernels.batch_popcount(words)
''',
    ),
    # -- RPR202: reference-kernel import -------------------------------
    Fixture(
        "RPR202", "violation", "src/repro/suite/_fx_score.py",
        '''\
from repro.core.bitmask import batch_and_popcount


def overlap(a, b):
    return batch_and_popcount(a, b)
''',
    ),
    Fixture(
        "RPR202", "clean", "src/repro/suite/_fx_score.py",
        '''\
from repro.core.backends import resolve_backend


def overlap(a, b, backend=None):
    kernels = resolve_backend(backend)
    return kernels.batch_and_popcount(a, b)
''',
    ),
    # -- RPR301: non-2xx outside send_error_json -----------------------
    Fixture(
        "RPR301", "violation", "src/repro/runtime/_fx_http.py",
        '''\
from http.server import BaseHTTPRequestHandler


class Handler(BaseHTTPRequestHandler):
    def _send_json(self, code, payload):
        self.send_response(code)
        self.end_headers()

    def do_GET(self):
        self._send_json(404, {"oops": "hand-rolled error"})
''',
    ),
    Fixture(
        "RPR301", "clean", "src/repro/runtime/_fx_http.py",
        '''\
from http.server import BaseHTTPRequestHandler


class Handler(BaseHTTPRequestHandler):
    def _send_json(self, code, payload):
        self.send_response(code)
        self.end_headers()

    def do_GET(self):
        if self.path == "/healthz":
            payload, code = self.server.front.health()
            self._send_json(code, payload)  # variable status: exempt
        else:
            self.server.front.send_error_json(
                self, 404, "not_found", "no such path"
            )
''',
    ),
    # -- RPR302: undocumented error-code slug --------------------------
    Fixture(
        "RPR302", "violation", "src/repro/runtime/_fx_codes.py",
        '''\
import http.server  # binds the error-schema rules to this module


def reject(front, handler):
    front.send_error_json(handler, 429, "chill_out", "too fast")
''',
    ),
    Fixture(
        "RPR302", "clean", "src/repro/runtime/_fx_codes.py",
        '''\
import http.server  # binds the error-schema rules to this module


def reject(front, handler):
    front.send_error_json(
        handler, 429, "backpressure", "too fast", retry_after=0.1
    )
''',
    ),
    # -- RPR401: bare except -------------------------------------------
    Fixture(
        "RPR401", "violation", "src/repro/runtime/_fx_bare.py",
        '''\
def reap(worker):
    try:
        worker.join(timeout=1.0)
    except:
        worker.kill()
''',
    ),
    Fixture(
        "RPR401", "clean", "src/repro/runtime/_fx_bare.py",
        '''\
def reap(worker):
    try:
        worker.join(timeout=1.0)
    except (OSError, ValueError):
        worker.kill()
''',
    ),
    # -- RPR402: swallowed BaseException -------------------------------
    Fixture(
        "RPR402", "violation", "src/repro/runtime/_fx_base.py",
        '''\
def drain(queue):
    try:
        while True:
            queue.get_nowait()
    except BaseException:
        return
''',
    ),
    Fixture(
        "RPR402", "clean", "src/repro/runtime/_fx_base.py",
        '''\
def drain(queue, log):
    try:
        while True:
            queue.get_nowait()
    except BaseException as exc:
        log.warning("drain interrupted: %s", exc)
        raise
''',
    ),
    # -- RPR403: except Exception: pass --------------------------------
    Fixture(
        "RPR403", "violation", "src/repro/runtime/_fx_silent.py",
        '''\
def release_quietly(slabs, slot):
    try:
        slabs.release(slot)
    except Exception:
        pass
''',
    ),
    Fixture(
        "RPR403", "clean", "src/repro/runtime/_fx_silent.py",
        '''\
from repro.runtime.transport import TransportError


def release_quietly(slabs, slot):
    try:
        slabs.release(slot)
    except TransportError:
        pass  # ring already torn down by a racing reap
''',
    ),
    # -- RPR001: parse failure -----------------------------------------
    Fixture(
        "RPR001", "violation", "src/repro/runtime/_fx_syntax.py",
        '''\
def broken(:
    return
''',
    ),
    Fixture(
        "RPR001", "clean", "src/repro/runtime/_fx_syntax.py",
        '''\
def fine():
    return None
''',
    ),
]


def seeded_violations() -> List[Fixture]:
    return [f for f in FIXTURES if f.kind == "violation"]


def clean_fixtures() -> List[Fixture]:
    return [f for f in FIXTURES if f.kind == "clean"]
