"""Batch normalisation (train + inference), transparent to extraction."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.nn.module import Module, Parameter

__all__ = ["BatchNorm2d", "BatchNorm1d"]


class _BatchNorm(Module):
    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features), name="gamma")
        self.beta = Parameter(np.zeros(num_features), name="beta")
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def _buffers(self) -> Dict[str, np.ndarray]:
        return {
            "running_mean": self.running_mean,
            "running_var": self.running_var,
        }

    def _load_buffers(self, state, prefix: str) -> None:
        self.running_mean = np.array(state[prefix + "running_mean"])
        self.running_var = np.array(state[prefix + "running_var"])

    def _reduce_axes(self, x: np.ndarray):
        raise NotImplementedError

    def _shape_for(self, x: np.ndarray, v: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def forward(self, x: np.ndarray) -> np.ndarray:
        axes = self._reduce_axes(x)
        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            count = x.size / self.num_features
            unbiased = var * count / max(count - 1, 1)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * unbiased
            )
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - self._shape_for(x, mean)) * self._shape_for(x, inv_std)
        self._cache = {"x_hat": x_hat, "inv_std": inv_std, "axes": axes}
        return self._shape_for(x, self.gamma.data) * x_hat + self._shape_for(
            x, self.beta.data
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x_hat = self._cache["x_hat"]
        inv_std = self._cache["inv_std"]
        axes = self._cache["axes"]
        self.gamma.grad += (grad_out * x_hat).sum(axis=axes)
        self.beta.grad += grad_out.sum(axis=axes)
        gamma = self._shape_for(grad_out, self.gamma.data)
        if not self.training:
            return grad_out * gamma * self._shape_for(grad_out, inv_std)
        count = grad_out.size / self.num_features
        g = grad_out * gamma
        mean_g = self._shape_for(grad_out, g.mean(axis=axes))
        mean_gx = self._shape_for(grad_out, (g * x_hat).mean(axis=axes) * count / count)
        return (
            (g - mean_g - x_hat * mean_gx)
            * self._shape_for(grad_out, inv_std)
        )

    def propagate_back(self, positions: np.ndarray, sample: int = 0) -> np.ndarray:
        """Element-wise affine transform: positions pass through."""
        return positions


class BatchNorm2d(_BatchNorm):
    """Per-channel normalisation of (N, C, H, W) inputs."""

    def _reduce_axes(self, x: np.ndarray):
        return (0, 2, 3)

    def _shape_for(self, x: np.ndarray, v: np.ndarray) -> np.ndarray:
        return v[None, :, None, None]


class BatchNorm1d(_BatchNorm):
    """Per-feature normalisation of (N, D) inputs."""

    def _reduce_axes(self, x: np.ndarray):
        return (0,)

    def _shape_for(self, x: np.ndarray, v: np.ndarray) -> np.ndarray:
        return v[None, :]
