"""Sec. V-B — extra DRAM traffic of mask/psum storage.

Paper claim: "The additional DRAM traffic incurred by storing and
reading partial sums is negligible (<0.1%) compared to the original
DRAM traffic since each partial sum is read and stored only once" —
said of the mask-based (absolute threshold) regimes, while the
store-every-psum regime of the basic algorithm is exactly the memory
explosion Sec. III-B calls out (9x–420x over inference feature traffic).

This bench reports extra detection traffic relative to baseline
inference DRAM traffic for the three storage regimes.
"""

from repro.core import ExtractionConfig, PathExtractor, calibrate_phi
from repro.eval import Workbench, render_table
from repro.hw import DEFAULT_HW, detection_dram_footprint, inference_cost


def _traffic_rows(wb):
    model, workload = wb.model, wb.workload
    n = model.num_extraction_units()
    x = wb.dataset.x_test[:1]
    base_bytes = inference_cost(workload, DEFAULT_HW).dram_bytes

    regimes = []
    bwab = calibrate_phi(model, ExtractionConfig.bwab(n),
                         wb.dataset.x_train[:4])
    trace = PathExtractor(model, bwab).extract(x).trace
    regimes.append(("BwAb masks", bwab, trace, False))

    fwab = wb.config_for("FwAb")
    trace = PathExtractor(model, fwab).extract(x).trace
    regimes.append(("FwAb masks", fwab, trace, False))

    bwcu = ExtractionConfig.bwcu(n, theta=0.5)
    trace = PathExtractor(model, bwcu).extract(x).trace
    regimes.append(("BwCu recompute", bwcu, trace, True))
    regimes.append(("BwCu store-all", bwcu, trace, False))

    rows = []
    for name, config, trace_, recompute in regimes:
        fp = detection_dram_footprint(workload, config, trace_, DEFAULT_HW,
                                      recompute)
        rows.append((
            name,
            fp.write_bytes / 1024,
            fp.read_bytes / 1024,
            100.0 * fp.traffic_bytes / base_bytes,
        ))
    return rows, base_bytes


def test_sec5b_dram_traffic(benchmark):
    wb = Workbench.get("alexnet_imagenet")
    rows, base_bytes = benchmark.pedantic(
        lambda: _traffic_rows(wb), rounds=1, iterations=1
    )
    print()
    print(render_table(
        f"Sec V-B: extra DRAM traffic vs inference "
        f"(baseline {base_bytes / 1024:.0f} KiB/inference; paper: masks "
        f"<0.1%, store-all is the Sec III-B blow-up)",
        ["regime", "extra writes (KiB)", "extra reads (KiB)",
         "traffic overhead %"],
        rows, float_fmt="{:.2f}",
    ))
    by_name = {r[0]: r for r in rows}
    # The paper's absolute claim (<0.1%) holds at full-network scale,
    # where feature/weight traffic dwarfs one mask bit per MAC; on the
    # scaled-down substrate the *relative* structure is what must hold:
    # 1-bit masks cost ~1/16 of storing 16-bit psums ...
    assert by_name["BwAb masks"][3] < by_name["BwCu store-all"][3] / 8
    # ... forward masks cover only output activations, cheaper still ...
    assert by_name["FwAb masks"][3] < by_name["BwAb masks"][3]
    # ... and recompute eliminates the psum DRAM round-trip entirely.
    assert by_name["BwCu recompute"][3] == 0.0
    assert by_name["BwCu store-all"][3] > 100.0  # the Sec III-B blow-up