"""Weight-stationary systolic-array dataflow model (Sec. V-B).

The baseline accelerator is a TPU-like 20x20 systolic array.  The
top-level simulator charges ``ceil(macs / (rows*cols))`` compute cycles
per layer — the ideal-utilisation limit.  This module models the actual
dataflow so the ablation benchmark can quantify how far real layers sit
from that limit:

* a conv/FC layer is lowered to a GEMM: ``M x K @ K x N`` where
  ``K`` is the receptive-field size, ``N`` the output-channel count and
  ``M`` the number of output positions;
* the array holds a ``K_tile x N_tile`` tile of *weights* (stationary);
  activations stream through rows, partial sums exit columns;
* per tile: a weight-load phase (``K_tile`` cycles, columns load in
  parallel), a streaming phase (one activation row per cycle, ``M``
  cycles) and a pipeline drain (``K_tile + N_tile`` cycles);
* partial sums accumulate across the ``K`` tile loop in the column
  accumulators, so K-tiling adds no extra memory round-trips.

Small or ragged layers (first conv layers: K = 27; last FC layer of a
classifier: N = num_classes) leave most of the array idle, which is
exactly the effect the ideal model hides.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.hw.config import HardwareConfig
from repro.hw.workload import LayerWorkload, ModelWorkload

__all__ = [
    "GemmShape",
    "SystolicCost",
    "gemm_shape",
    "systolic_gemm_cycles",
    "systolic_layer_cost",
    "systolic_inference_cycles",
]


@dataclass(frozen=True)
class GemmShape:
    """The lowered ``M x K @ K x N`` problem for one layer."""

    m: int  # output positions (batch x spatial)
    k: int  # reduction depth (receptive-field size)
    n: int  # output channels

    def __post_init__(self):
        if min(self.m, self.k, self.n) < 1:
            raise ValueError(f"degenerate GEMM shape {self}")

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n


def gemm_shape(layer: LayerWorkload) -> GemmShape:
    """Recover the GEMM dimensions from a layer workload summary.

    ``weight_words = K x N`` and ``out_words = M x N`` for both conv
    (im2col lowering) and linear layers, so the shape follows from the
    three recorded word counts.
    """
    k = layer.rf_size
    if k <= 0 or layer.weight_words % k:
        raise ValueError(
            f"layer {layer.name!r}: weight words {layer.weight_words} "
            f"not divisible by rf size {k}"
        )
    n = layer.weight_words // k
    if layer.out_words % n:
        raise ValueError(
            f"layer {layer.name!r}: output words {layer.out_words} "
            f"not divisible by channel count {n}"
        )
    m = layer.out_words // n
    return GemmShape(m=m, k=k, n=n)


@dataclass(frozen=True)
class SystolicCost:
    """Dataflow cycle breakdown for one layer."""

    shape: GemmShape
    k_tiles: int
    n_tiles: int
    load_cycles: int
    stream_cycles: int
    drain_cycles: int

    @property
    def tiles(self) -> int:
        return self.k_tiles * self.n_tiles

    @property
    def cycles(self) -> int:
        return self.load_cycles + self.stream_cycles + self.drain_cycles

    def utilization(self, hw: HardwareConfig) -> float:
        """Achieved MACs per array-cycle, in [0, 1]."""
        peak = self.cycles * hw.macs_per_cycle
        return self.shape.macs / peak if peak else 0.0

    def ideal_cycles(self, hw: HardwareConfig) -> int:
        return math.ceil(self.shape.macs / hw.macs_per_cycle)

    def overhead_vs_ideal(self, hw: HardwareConfig) -> float:
        return self.cycles / self.ideal_cycles(hw)


def systolic_gemm_cycles(shape: GemmShape, hw: HardwareConfig) -> SystolicCost:
    """Tile the GEMM onto the array and count dataflow cycles."""
    rows, cols = hw.array_rows, hw.array_cols
    k_tiles = math.ceil(shape.k / rows)
    n_tiles = math.ceil(shape.n / cols)
    load = 0
    stream = 0
    drain = 0
    for ki in range(k_tiles):
        k_tile = min(rows, shape.k - ki * rows)
        for ni in range(n_tiles):
            n_tile = min(cols, shape.n - ni * cols)
            load += k_tile          # columns load their weights in parallel
            stream += shape.m       # one activation vector enters per cycle
            drain += k_tile + n_tile  # wavefront exits the array
    return SystolicCost(
        shape=shape,
        k_tiles=k_tiles,
        n_tiles=n_tiles,
        load_cycles=load,
        stream_cycles=stream,
        drain_cycles=drain,
    )


def systolic_layer_cost(layer: LayerWorkload, hw: HardwareConfig) -> SystolicCost:
    """Dataflow cost of one extraction unit."""
    return systolic_gemm_cycles(gemm_shape(layer), hw)


def systolic_inference_cycles(
    workload: ModelWorkload, hw: HardwareConfig
) -> List[SystolicCost]:
    """Per-layer dataflow costs for the whole network."""
    return [systolic_layer_cost(layer, hw) for layer in workload.layers]
