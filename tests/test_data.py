"""Unit tests for synthetic dataset generation."""

import numpy as np
import pytest

from repro.data import (
    DatasetSpec,
    batch_iterator,
    make_cifar_like,
    make_dataset,
    make_imagenet_like,
    train_test_split,
)


class TestGeneration:
    def test_shapes_and_ranges(self):
        ds = make_dataset(DatasetSpec(num_classes=4, train_per_class=10,
                                      test_per_class=5, image_size=8))
        assert ds.x_train.shape == (40, 3, 8, 8)
        assert ds.x_test.shape == (20, 3, 8, 8)
        assert ds.x_train.min() >= 0.0 and ds.x_train.max() <= 1.0
        assert set(np.unique(ds.y_train)) == set(range(4))

    def test_determinism(self):
        a = make_dataset(DatasetSpec(seed=42))
        b = make_dataset(DatasetSpec(seed=42))
        assert np.array_equal(a.x_train, b.x_train)
        assert np.array_equal(a.y_test, b.y_test)

    def test_different_seeds_differ(self):
        a = make_dataset(DatasetSpec(seed=1))
        b = make_dataset(DatasetSpec(seed=2))
        assert not np.array_equal(a.x_train, b.x_train)

    def test_needs_two_classes(self):
        with pytest.raises(ValueError):
            make_dataset(DatasetSpec(num_classes=1))

    def test_class_similarity_knob(self):
        """Higher class_similarity -> more correlated prototypes (the
        CIFAR-vs-ImageNet contrast of Fig. 5)."""

        def mean_proto_corr(ds):
            protos = ds.prototypes.reshape(ds.num_classes, -1)
            protos = protos - protos.mean(axis=1, keepdims=True)
            corrs = []
            for i in range(len(protos)):
                for j in range(i + 1, len(protos)):
                    c = np.dot(protos[i], protos[j]) / (
                        np.linalg.norm(protos[i]) * np.linalg.norm(protos[j])
                    )
                    corrs.append(c)
            return np.mean(corrs)

        distinct = make_imagenet_like(num_classes=6, seed=0)
        similar = make_cifar_like(num_classes=6, seed=0)
        assert mean_proto_corr(similar) > mean_proto_corr(distinct) + 0.2


class TestLoaders:
    def test_batch_iterator_covers_everything(self):
        x = np.arange(10)[:, None].astype(float)
        y = np.arange(10)
        seen = []
        for xb, yb in batch_iterator(x, y, batch_size=3):
            assert len(xb) == len(yb)
            seen.extend(yb.tolist())
        assert sorted(seen) == list(range(10))

    def test_batch_iterator_validation(self):
        with pytest.raises(ValueError):
            list(batch_iterator(np.zeros(3), np.zeros(2), 1))
        with pytest.raises(ValueError):
            list(batch_iterator(np.zeros(3), np.zeros(3), 0))

    def test_split_fractions(self):
        x = np.arange(100)[:, None].astype(float)
        y = np.arange(100)
        xtr, ytr, xte, yte = train_test_split(x, y, test_fraction=0.25)
        assert len(xtr) == 75 and len(xte) == 25
        assert sorted(np.concatenate([ytr, yte]).tolist()) == list(range(100))

    def test_split_validation(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros(4), np.zeros(4), test_fraction=1.5)
