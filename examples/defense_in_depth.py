#!/usr/bin/env python
"""Defense in depth: adversarial retraining + Ptolemy detection.

Sec. VIII of the paper notes that adversarial retraining hardens a
model but "does not have the detection capability at inference time",
and that "Ptolemy can also be integrated with adversarial retraining".
This example walks that integration end to end:

1. Train a victim model; measure how badly FGSM breaks it.
2. Adversarially retrain the model (Madry-style batch mixing).
3. Re-profile Ptolemy on the retrained weights — class paths are a
   property of the weights, so retraining requires fresh canaries.
4. Put both layers in front of attack traffic and measure coverage:
   inputs the model now classifies correctly, inputs Ptolemy flags,
   and the union the deployed system actually rejects or survives.

Run: python examples/defense_in_depth.py
"""

from repro.attacks import FGSM
from repro.core import ExtractionConfig, PtolemyDetector, calibrate_phi
from repro.data import make_imagenet_like
from repro.defenses import (
    AdversarialTrainConfig,
    adversarial_retrain,
    evaluate_combined_defense,
    robust_accuracy,
)
from repro.nn import TrainConfig, build_mini_alexnet, evaluate_accuracy, train_classifier

ATTACK = FGSM(eps=0.10)


def main():
    print("== 1. training the victim model ==")
    dataset = make_imagenet_like(num_classes=5, train_per_class=30,
                                 test_per_class=20, seed=21)
    model = build_mini_alexnet(num_classes=5, seed=21)
    train_classifier(model, dataset.x_train, dataset.y_train,
                     TrainConfig(epochs=8, seed=21))
    clean = evaluate_accuracy(model, dataset.x_test, dataset.y_test)
    x_eval, y_eval = dataset.x_test[:30], dataset.y_test[:30]
    robust = robust_accuracy(model, x_eval, y_eval, ATTACK)
    print(f"clean accuracy {clean:.3f}, accuracy under FGSM {robust:.3f}")

    print("\n== 2. adversarial retraining ==")
    history = adversarial_retrain(
        model, dataset.x_train, dataset.y_train, ATTACK,
        AdversarialTrainConfig(epochs=4, adv_fraction=0.5, seed=21,
                               verbose=True),
    )
    robust_after = robust_accuracy(model, x_eval, y_eval, ATTACK)
    print(f"accuracy under FGSM after retraining: {robust_after:.3f}")

    print("\n== 3. re-profiling Ptolemy on the retrained weights ==")
    config = calibrate_phi(
        model, ExtractionConfig.fwab(model.num_extraction_units()),
        dataset.x_train[:4], quantile=0.95,
    )
    detector = PtolemyDetector(model, config, n_trees=60, seed=21)
    detector.profile(dataset.x_train, dataset.y_train, max_per_class=20)
    attempts = ATTACK.generate(model, dataset.x_train[:90],
                               dataset.y_train[:90])
    detector.fit_classifier(dataset.x_test[60:90],
                            attempts.x_adv[attempts.success])
    print(f"profiled {detector.class_paths.num_classes} class paths; "
          f"classifier fitted on {int(attempts.success.sum())} "
          f"successful attacks")

    print("\n== 4. combined coverage over live attack traffic ==")
    adv_eval = ATTACK.generate(model, x_eval, y_eval).x_adv
    report = evaluate_combined_defense(
        model, detector, adv_eval, y_eval, dataset.x_test[30:60],
    )
    print(f"handled by retrained model alone : {report.model_correct_rate:.3f}")
    print(f"flagged by Ptolemy alone         : {report.detector_flag_rate:.3f}")
    print(f"handled by the combination       : {report.handled_combined:.3f}")
    print(f"benign false alarms              : "
          f"{report.benign_false_alarm_rate:.3f}")
    print("\nretraining fixes most inputs, Ptolemy catches survivors —")
    print("the union is the deployed system's coverage (Sec. VIII).")


if __name__ == "__main__":
    main()
