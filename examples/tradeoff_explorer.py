#!/usr/bin/env python
"""Accuracy-efficiency trade-off explorer (the paper's Sec. III-C/VII-F).

Uses Ptolemy's programming interface to sweep the three algorithmic
knobs — extraction direction, thresholding mechanism, and selective
extraction — and prints the resulting design space: detection AUC
against modelled latency/energy overhead, including the exact Fig. 6
program from the paper.

Run: python examples/tradeoff_explorer.py
"""

import numpy as np

from repro.attacks import BIM
from repro.compiler import apply_optimizations
from repro.core import (
    ExtractionConfig,
    PathExtractor,
    PtolemyDetector,
    calibrate_phi,
    fig6_program,
)
from repro.data import make_imagenet_like
from repro.eval import DesignPoint, render_table, select_within_budget
from repro.hw import model_workload, simulate_detection
from repro.nn import TrainConfig, build_mini_alexnet, train_classifier


def measure(model, dataset, config, name, fit_adv, eval_adv):
    """AUC + modelled cost for one extraction config."""
    detector = PtolemyDetector(model, config, n_trees=50, seed=0)
    detector.profile(dataset.x_train, dataset.y_train, max_per_class=20)
    detector.fit_classifier(dataset.x_train[40:80], fit_adv)
    benign = dataset.x_test[20:50]
    auc = detector.evaluate_auc(benign, eval_adv)

    model.forward(dataset.x_test[:1])
    workload = model_workload(model)
    trace = detector.extractor.extract(dataset.x_test[:1]).trace
    schedule = apply_optimizations(config, config.num_layers)
    cost = simulate_detection(workload, config, trace, schedule)
    return (name, auc, cost.latency_overhead, cost.energy_overhead)


def main():
    dataset = make_imagenet_like(num_classes=6, train_per_class=40,
                                 test_per_class=25, seed=4)
    model = build_mini_alexnet(num_classes=6, seed=4)
    print("training the victim model...")
    train_classifier(model, dataset.x_train, dataset.y_train,
                     TrainConfig(epochs=8, seed=4))
    n = model.num_extraction_units()
    attack = BIM(eps=0.08)
    fit_adv = attack.generate(model, dataset.x_train[:40],
                              dataset.y_train[:40]).x_adv
    eval_adv = attack.generate(model, dataset.x_test[:20],
                               dataset.y_test[:20]).x_adv
    sample = dataset.x_train[:4]

    # the design points: the four named variants, two theta settings,
    # selective extraction, and the literal Fig. 6 program
    points = [
        ("BwCu theta=0.5", ExtractionConfig.bwcu(n, theta=0.5)),
        ("BwCu theta=0.1", ExtractionConfig.bwcu(n, theta=0.1)),
        ("BwCu last-3-layers",
         ExtractionConfig.bwcu(n, theta=0.5, termination_layer=n - 2)),
        ("BwAb", calibrate_phi(model, ExtractionConfig.bwab(n), sample)),
        ("FwAb", calibrate_phi(model, ExtractionConfig.fwab(n), sample,
                               quantile=0.95)),
        ("FwAb late-start",
         calibrate_phi(model, ExtractionConfig.fwab(n, start_layer=n - 2),
                       sample, quantile=0.95)),
        ("Hybrid", calibrate_phi(model, ExtractionConfig.hybrid(n, 0.5),
                                 sample)),
        ("Fig. 6 program",
         calibrate_phi(model, fig6_program(n, theta=0.5), sample,
                       quantile=0.95)),
    ]
    rows = []
    for name, config in points:
        print(f"measuring {name}...")
        rows.append(measure(model, dataset, config, name, fit_adv, eval_adv))

    print()
    print(render_table(
        "Ptolemy accuracy-efficiency design space (MiniAlexNet, BIM)",
        ["configuration", "AUC", "latency x", "energy x"],
        rows,
    ))
    best_cheap = min(rows, key=lambda r: r[2])
    best_acc = max(rows, key=lambda r: r[1])
    print(f"\ncheapest point : {best_cheap[0]} "
          f"({best_cheap[2]:.2f}x latency, AUC {best_cheap[1]:.3f})")
    print(f"most accurate  : {best_acc[0]} "
          f"(AUC {best_acc[1]:.3f}, {best_acc[2]:.2f}x latency)")

    # hand the measured points to the auto-tuner: "what is the most
    # accurate configuration costing at most 10% extra latency?"
    points = [
        DesignPoint(variant=name, theta=0.5, auc=auc,
                    latency_overhead=lat, energy_overhead=en)
        for name, auc, lat, en in rows
    ]
    budget = 1.10
    choice = select_within_budget(points, latency_budget=budget)
    print(f"\nauto-tuner pick at a {budget:.2f}x latency budget: "
          f"{choice.best.variant} (AUC {choice.best.auc:.3f}, "
          f"{choice.best.latency_overhead:.2f}x)")
    print("Pareto frontier (latency-ordered): "
          + ", ".join(p.variant for p in choice.frontier))
    print("\nThe paper's headline trade: ~10% extra latency buys ~0.03 "
          "accuracy (Sec. I); the table above is the same dial.")


if __name__ == "__main__":
    main()
