"""Tests for the evaluation harness, reporting helpers, and the CLI."""

import numpy as np
import pytest

from repro.eval import SCENARIOS, Workbench, render_matrix, render_table
from repro.eval.harness import _WORKBENCH_CACHE


class TestScenarios:
    def test_registry_covers_paper_workloads(self):
        assert "alexnet_imagenet" in SCENARIOS
        assert "resnet18_cifar" in SCENARIOS
        for name in ("resnet50_imagenet", "vgg_imagenet",
                     "densenet_imagenet", "inception_imagenet"):
            assert name in SCENARIOS  # the Sec. VII-H suite

    def test_scenario_builds_deterministically(self):
        scenario = SCENARIOS["alexnet_imagenet"]
        a = scenario.build_dataset()
        b = scenario.build_dataset()
        assert np.array_equal(a.x_train, b.x_train)


class TestWorkbench:
    def test_cached_instance(self):
        wb1 = Workbench.get("alexnet_imagenet")
        wb2 = Workbench.get("alexnet_imagenet")
        assert wb1 is wb2
        assert "alexnet_imagenet" in _WORKBENCH_CACHE

    def test_trains_to_usable_accuracy(self):
        wb = Workbench.get("alexnet_imagenet")
        assert wb.clean_accuracy > 0.8

    def test_attack_sets_cached_and_disjoint(self):
        wb = Workbench.get("alexnet_imagenet")
        fit = wb.attack_fit("fgsm")
        again = wb.attack_fit("fgsm")
        assert fit is again
        # fit and eval adversarial sets come from different samples
        ev = wb.attack_eval("fgsm")
        assert fit.x_adv.shape[0] == wb._fit_count
        assert ev.x_adv.shape[0] == wb._eval_count

    def test_detector_cached_per_variant(self):
        wb = Workbench.get("alexnet_imagenet")
        d1 = wb.detector("FwAb")
        d2 = wb.detector("FwAb")
        assert d1 is d2
        assert wb.detector("BwAb") is not d1

    def test_unknown_variant_rejected(self):
        wb = Workbench.get("alexnet_imagenet")
        with pytest.raises(ValueError):
            wb.config_for("NoSuchVariant")

    def test_variant_cost_sane(self):
        wb = Workbench.get("alexnet_imagenet")
        cost = wb.variant_cost("FwAb")
        assert cost.latency_overhead >= 1.0


class TestReporting:
    def test_render_table_aligns(self):
        text = render_table("title", ["a", "bb"], [(1, 2.5), ("xy", 3.25)])
        lines = text.splitlines()
        assert lines[0] == "title"
        assert "2.500" in text and "xy" in text

    def test_render_table_empty_rows(self):
        text = render_table("t", ["col"], [])
        assert "col" in text

    def test_render_matrix(self):
        mat = np.array([[1.0, 0.25], [0.25, 1.0]])
        text = render_matrix("m", [0, 1], mat)
        assert "0.25" in text and "1.00" in text


class TestCli:
    def test_scenarios_command(self, capsys):
        from repro.cli import main

        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "alexnet_imagenet" in out

    def test_area_command(self, capsys):
        from repro.cli import main

        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "overhead_pct" in out

    def test_cost_command(self, capsys):
        from repro.cli import main

        assert main(["cost", "alexnet_imagenet", "--variant", "FwAb"]) == 0
        out = capsys.readouterr().out
        assert "latency overhead" in out

    def test_compile_command(self, capsys):
        from repro.cli import main

        assert main(["compile", "alexnet_imagenet"]) == 0
        out = capsys.readouterr().out
        assert "instructions" in out and "sort" in out

    def test_train_profile_detect_pipeline(self, tmp_path, capsys):
        from repro.cli import main

        model_path = tmp_path / "model.npz"
        det_path = tmp_path / "det"
        assert main(["train", "alexnet_imagenet", "--epochs", "4",
                     "--output", str(model_path)]) == 0
        assert main(["profile", "alexnet_imagenet",
                     "--model", str(model_path),
                     "--max-per-class", "8",
                     "--output", str(det_path)]) == 0
        assert main(["detect", "alexnet_imagenet",
                     "--model", str(model_path),
                     "--detector", str(det_path),
                     "--count", "4"]) == 0
        out = capsys.readouterr().out
        assert "flagged" in out

    def test_corrupt_command(self, capsys):
        from repro.cli import main

        assert main(["corrupt", "alexnet_imagenet", "--count", "6",
                     "--severities", "5"]) == 0
        out = capsys.readouterr().out
        assert "gaussian_noise" in out
        assert "prediction flips" in out

    def test_monitor_command(self, capsys):
        from repro.cli import main

        assert main(["monitor", "alexnet_imagenet", "--count", "6",
                     "--fast"]) == 0
        out = capsys.readouterr().out
        assert "deployed: threshold=" in out
        assert "rolling rejection rate" in out

    def test_explain_command(self, capsys):
        from repro.cli import main

        assert main(["explain", "alexnet_imagenet", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "benign input saliency" in out
        assert "adversarial input saliency" in out
        assert "divergent from the class canary" in out

    def test_defend_command(self, capsys):
        from repro.cli import main

        assert main(["defend", "alexnet_imagenet", "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert "robust accuracy before retraining" in out
        assert "robust accuracy after retraining" in out
        assert "handled combined" in out

    def test_unknown_scenario_exits(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["train", "nope"])
