"""Sec. VIII — the Carlini et al. evaluation-checklist sanity checks.

The paper lists the "basic sanity checks" it performed when red-teaming
its own defense:

* iterative attacks perform better than single-step attacks;
* increasing the perturbation budget strictly increases attack success
  rate;
* with "high" distortion, model accuracy reaches random guessing.

This bench re-runs those checks on the reproduction substrate, so the
attack suite itself is validated the same way the paper validates its
attacks.
"""

import numpy as np

from repro.attacks import BIM, FGSM
from repro.eval import Workbench, render_table, sparkline

EPS_LADDER = (0.02, 0.05, 0.10, 0.20, 0.40)


def _success_curve(wb, attack_cls, **kwargs):
    n = 25
    x = wb.dataset.x_test[:n]
    y = wb.dataset.y_test[:n]
    rates = []
    for eps in EPS_LADDER:
        result = attack_cls(eps=eps, **kwargs).generate(wb.model, x, y)
        rates.append(result.success_rate)
    return rates


def _accuracy_under(wb, eps):
    n = 25
    x = wb.dataset.x_test[:n]
    y = wb.dataset.y_test[:n]
    adv = FGSM(eps=eps).generate(wb.model, x, y).x_adv
    preds = np.argmax(wb.model.forward(adv), axis=1)
    return float(np.mean(preds == y))


def test_sec8_sanity_checks(benchmark):
    wb = Workbench.get("alexnet_imagenet")

    def run():
        fgsm = _success_curve(wb, FGSM)
        bim = _success_curve(wb, BIM)
        acc_high = _accuracy_under(wb, eps=0.6)
        return fgsm, bim, acc_high

    fgsm, bim, acc_high = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    rows = [
        ["FGSM (single-step)"] + [f"{r:.2f}" for r in fgsm] + [sparkline(fgsm)],
        ["BIM (iterative)"] + [f"{r:.2f}" for r in bim] + [sparkline(bim)],
    ]
    print(render_table(
        "Sec VIII sanity checks: attack success rate vs eps "
        "(paper checklist: iterative > single-step; budget strictly helps)",
        ["attack"] + [f"eps={e}" for e in EPS_LADDER] + ["trend"],
        rows,
    ))
    num_classes = wb.dataset.num_classes
    print(f"model accuracy at eps=0.6: {acc_high:.2f} "
          f"(random guessing = {1.0 / num_classes:.2f})")

    # 1. iterative >= single-step at every budget
    assert all(b >= f - 1e-9 for b, f in zip(bim, fgsm))
    assert np.mean(bim) > np.mean(fgsm) - 1e-9
    # 2. success rate is (weakly) monotone in the budget and genuinely
    #    grows across the ladder
    assert all(np.diff(fgsm) >= -0.05)
    assert fgsm[-1] > fgsm[0]
    assert bim[-1] > bim[0]
    # 3. high distortion collapses accuracy to ~random guessing
    assert acc_high <= 1.0 / num_classes + 0.15
