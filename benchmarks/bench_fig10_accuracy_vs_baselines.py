"""Fig. 10 — detection accuracy of the four Ptolemy variants vs the
EP and CDRP baselines, on both networks, averaged over the five
standard attacks.

Paper result: the backward variants (BwCu/BwAb/Hybrid) match or beat
EP and clearly beat CDRP; FwAb trades a little accuracy (~0.03 below
EP on AlexNet) for its near-zero latency overhead.
"""

import numpy as np

from repro.baselines import CDRPDetector, EPDetector
from repro.eval import Workbench, render_table

ATTACKS = ("bim", "cwl2", "deepfool", "fgsm", "jsma")
VARIANTS = ("BwCu", "BwAb", "FwAb", "Hybrid")


def _baseline_aucs(wb):
    """Mean AUC of EP and CDRP across the standard attacks."""
    ep = EPDetector(wb.model, n_trees=40)
    ep.profile(wb.dataset.x_train, wb.dataset.y_train, max_per_class=25)
    ep.fit_classifier(wb.fit_benign, wb.attack_fit("bim").x_adv)
    cdrp = CDRPDetector(wb.model, n_trees=40)
    cdrp.fit(wb.fit_benign, wb.attack_fit("bim").x_adv)
    ep_aucs, cdrp_aucs = [], []
    for attack in ATTACKS:
        adv = wb.attack_eval(attack).x_adv
        ep_aucs.append(ep.evaluate_auc(wb.eval_benign, adv))
        cdrp_aucs.append(cdrp.evaluate_auc(wb.eval_benign, adv))
    return float(np.mean(ep_aucs)), float(np.mean(cdrp_aucs))


def _scenario_rows(scenario):
    wb = Workbench.get(scenario)
    rows = []
    for variant in VARIANTS:
        aucs = wb.mean_auc(variant, attacks=ATTACKS)
        per_attack = [aucs[a] for a in ATTACKS]
        rows.append((variant, aucs["mean"], min(per_attack), max(per_attack)))
    ep_auc, cdrp_auc = _baseline_aucs(wb)
    rows.append(("EP", ep_auc, ep_auc, ep_auc))
    rows.append(("CDRP", cdrp_auc, cdrp_auc, cdrp_auc))
    return rows


def _check_shape(rows):
    by_name = {r[0]: r[1] for r in rows}
    # Ptolemy's backward variants are competitive with EP...
    assert by_name["BwCu"] >= by_name["EP"] - 0.05
    # ...and clearly ahead of CDRP (paper: up to +0.10 / +0.16)
    assert by_name["BwCu"] > by_name["CDRP"]
    assert by_name["BwAb"] > by_name["CDRP"]
    # every Ptolemy variant is a working detector
    for variant in VARIANTS:
        assert by_name[variant] > 0.75


def test_fig10a_alexnet_accuracy(benchmark):
    rows = benchmark.pedantic(
        lambda: _scenario_rows("alexnet_imagenet"), rounds=1, iterations=1
    )
    print()
    print(render_table(
        "Fig 10a: accuracy on MiniAlexNet @ imagenet-like "
        "(paper: BwCu~.94 >= EP, CDRP ~.84)",
        ["detector", "mean AUC", "min", "max"],
        rows,
    ))
    _check_shape(rows)


def test_fig10b_resnet18_accuracy(benchmark):
    rows = benchmark.pedantic(
        lambda: _scenario_rows("resnet18_cifar"), rounds=1, iterations=1
    )
    print()
    print(render_table(
        "Fig 10b: accuracy on MiniResNet18 @ cifar-like "
        "(paper: Ptolemy +0.14-0.16 over CDRP)",
        ["detector", "mean AUC", "min", "max"],
        rows,
    ))
    _check_shape(rows)
