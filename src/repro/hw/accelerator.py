"""Timing/energy model of the (augmented) DNN accelerator (Sec. V-B).

Per layer, compute and DMA phases are double-buffered, so the layer's
latency is the max of its compute cycles and its memory cycles; layer
latencies sum over the network.  The MAC augmentation (threshold
comparator + mask mux, Fig. 9a) adds a compare per partial sum in
absolute-threshold layers — energy only, since the comparator sits in
the MAC pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.hw.config import HardwareConfig
from repro.hw.workload import LayerWorkload, ModelWorkload

__all__ = ["LayerCost", "InferenceCost", "inference_cost", "recompute_cycles"]


@dataclass(frozen=True)
class LayerCost:
    """Cycles/energy/DRAM traffic for one layer's inference."""

    name: str
    compute_cycles: int
    memory_cycles: int
    energy_pj: float
    dram_bytes: int

    @property
    def cycles(self) -> int:
        """Double-buffered: compute overlaps DMA."""
        return max(self.compute_cycles, self.memory_cycles)


@dataclass(frozen=True)
class InferenceCost:
    """Whole-network inference cost."""

    layers: List[LayerCost]

    @property
    def cycles(self) -> int:
        return sum(layer.cycles for layer in self.layers)

    @property
    def energy_pj(self) -> float:
        return sum(layer.energy_pj for layer in self.layers)

    @property
    def dram_bytes(self) -> int:
        return sum(layer.dram_bytes for layer in self.layers)

    def layer_cycles(self, index: int) -> int:
        return self.layers[index].cycles


def _layer_cost(layer: LayerWorkload, hw: HardwareConfig) -> LayerCost:
    compute = math.ceil(layer.macs / hw.macs_per_cycle)
    moved_words = layer.weight_words + layer.in_words + layer.out_words
    dram_bytes = moved_words * hw.word_bytes
    memory = math.ceil(dram_bytes / hw.dram_bytes_per_cycle)
    # energy: MACs + effective SRAM traffic (weights/ifmap/ofmap words,
    # each read or written once from SRAM per tile) + DRAM
    energy = (
        layer.macs * hw.energy.mac
        + (layer.macs * 0.5 + moved_words) * hw.energy.sram_word * 0.5
        + moved_words * hw.energy.dram_word
    )
    return LayerCost(layer.name, compute, memory, energy, dram_bytes)


def inference_cost(workload: ModelWorkload, hw: HardwareConfig) -> InferenceCost:
    """Baseline inference cost of the whole network."""
    return InferenceCost([_layer_cost(l, hw) for l in workload.layers])


def recompute_cycles(
    n_neurons: int, rf_size: int, hw: HardwareConfig
) -> int:
    """csps recompute cost: partial sums of ``n_neurons`` receptive
    fields re-computed on the *first PE row only* (Sec. V-B)."""
    if n_neurons == 0:
        return 0
    per_neuron = math.ceil(rf_size / hw.array_cols)
    return n_neurons * per_neuron
