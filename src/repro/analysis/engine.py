"""Analyzer driver: file walking, baseline, output, self-test, CLI.

Entry points:

* ``python scripts/analyze.py [targets...]`` — repo gate (exit 1 on
  any non-baselined finding).
* ``python -m repro.cli analyze`` — same driver behind the CLI.
* ``--self-test`` — the analyzer proves it still accepts every clean
  fixture and rejects every seeded violation before CI trusts it with
  the real tree (same contract as ``check_report_schema.py``).

The committed baseline (``ANALYSIS_baseline.json``) grandfathers
findings by ``(rule, path, stripped source line)`` so pure line drift
never resurrects them; it ships empty and should stay that way — fix
findings or suppress them at the site with ``# repro: noqa[RPRnnn]``.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .base import (
    PARSE_ERROR_CODE,
    Checker,
    FileContext,
    Finding,
    all_checkers,
)

# Importing the rule modules registers their checkers.
from . import api, concurrency, dispatch, hygiene  # noqa: F401

BASELINE_VERSION = 1
DEFAULT_BASELINE = "ANALYSIS_baseline.json"
#: Directories the repo gate walks when no explicit targets are given
#: (mirrors scripts/lint.py's TARGETS).
DEFAULT_TARGETS = ("src", "scripts", "benchmarks", "tests")
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist", ".ruff_cache"}


# -- core analysis ------------------------------------------------------

def analyze_source(
    path: str, source: str, checkers: Optional[Sequence[Checker]] = None
) -> List[Finding]:
    """All findings for one source blob presented as ``path``."""
    norm = path.replace("\\", "/")
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        lineno = exc.lineno or 1
        lines = source.splitlines()
        snippet = lines[lineno - 1].strip() if 0 < lineno <= len(lines) else ""
        return [Finding(
            rule=PARSE_ERROR_CODE,
            path=norm,
            line=lineno,
            col=(exc.offset or 1) - 1,
            message=f"file does not parse: {exc.msg}",
            snippet=snippet,
        )]
    ctx = FileContext(norm, source, tree)
    findings: List[Finding] = []
    for checker in (checkers if checkers is not None else all_checkers()):
        if not checker.applies(norm):
            continue
        for finding in checker.check(ctx):
            if not ctx.suppressed(finding.line, finding.rule):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def iter_python_files(targets: Sequence[str], root: Path) -> Iterable[Path]:
    for target in targets:
        path = (root / target) if not Path(target).is_absolute() \
            else Path(target)
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if any(part in _SKIP_DIRS for part in sub.parts):
                    continue
                yield sub


def analyze_paths(
    targets: Sequence[str], root: Optional[Path] = None
) -> List[Finding]:
    root = root or Path.cwd()
    checkers = all_checkers()
    findings: List[Finding] = []
    for file_path in iter_python_files(targets, root):
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(Finding(
                rule=PARSE_ERROR_CODE,
                path=_rel(file_path, root),
                line=1,
                col=0,
                message=f"file is unreadable: {exc}",
            ))
            continue
        findings.extend(
            analyze_source(_rel(file_path, root), source, checkers)
        )
    return findings


def _rel(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


# -- baseline -----------------------------------------------------------

def load_baseline(path: Path) -> List[dict]:
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: expected a baseline object with version "
            f"{BASELINE_VERSION}"
        )
    entries = data.get("findings")
    if not isinstance(entries, list):
        raise ValueError(f"{path}: 'findings' must be a list")
    for entry in entries:
        if not isinstance(entry, dict) or not (
            {"rule", "path", "snippet"} <= set(entry)
        ):
            raise ValueError(
                f"{path}: each baseline entry needs rule/path/snippet"
            )
    return entries


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[dict]
) -> Tuple[List[Finding], int, int]:
    """Split findings into (new, matched-count, stale-count).

    Matching is a multiset over ``Finding.key()``: two identical
    grandfathered lines need two baseline entries, and entries whose
    code was fixed in the meantime count as *stale* so the baseline
    shrinks instead of rotting.
    """
    budget: Dict[Tuple[str, str, str], int] = {}
    for entry in entries:
        key = (entry["rule"], entry["path"], entry["snippet"].strip())
        budget[key] = budget.get(key, 0) + 1
    fresh: List[Finding] = []
    matched = 0
    for finding in findings:
        key = finding.key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            matched += 1
        else:
            fresh.append(finding)
    stale = sum(budget.values())
    return fresh, matched, stale


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"rule": f.rule, "path": f.path, "snippet": f.snippet.strip()}
            for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


# -- output -------------------------------------------------------------

def render_text(findings: Sequence[Finding]) -> str:
    lines = [
        f"{f.path}:{f.line}:{f.col + 1}: {f.rule} {f.message}"
        for f in findings
    ]
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding], matched: int = 0, stale: int = 0
) -> str:
    payload = {
        "version": BASELINE_VERSION,
        "findings": [f.to_json() for f in findings],
        "count": len(findings),
        "baselined": matched,
        "stale_baseline_entries": stale,
    }
    return json.dumps(payload, indent=2)


# -- self-test ----------------------------------------------------------

def run_self_test(verbose: bool = True) -> int:
    """0 when every clean fixture passes and every seeded violation is
    rejected with exactly its rule code; 1 otherwise."""
    from .fixtures import FIXTURES

    failures: List[str] = []
    checked = 0
    for fixture in FIXTURES:
        findings = analyze_source(fixture.path, fixture.source)
        codes = {f.rule for f in findings}
        checked += 1
        if fixture.kind == "violation":
            if fixture.rule not in codes:
                failures.append(
                    f"seeded {fixture.rule} violation NOT rejected "
                    f"({fixture.path}); got {sorted(codes) or 'nothing'}"
                )
        else:
            if codes:
                failures.append(
                    f"clean {fixture.rule} fixture rejected "
                    f"({fixture.path}): {sorted(codes)}"
                )
    # Suppression handling is part of the contract: a noqa'd seeded
    # violation must stop firing, and an unrelated code must not
    # silence it.
    from .fixtures import seeded_violations

    for fixture in seeded_violations():
        if fixture.rule == PARSE_ERROR_CODE:
            continue  # syntax errors have no line to annotate
        suppressed = _suppress_lines(fixture, f"# repro: noqa[{fixture.rule}]")
        if any(f.rule == fixture.rule
               for f in analyze_source(fixture.path, suppressed)):
            failures.append(
                f"{fixture.rule}: site noqa[{fixture.rule}] did not "
                "suppress the finding"
            )
        wrong = _suppress_lines(fixture, "# repro: noqa[RPR999]")
        if not any(f.rule == fixture.rule
                   for f in analyze_source(fixture.path, wrong)):
            failures.append(
                f"{fixture.rule}: unrelated noqa[RPR999] wrongly "
                "suppressed the finding"
            )
        checked += 2
    for line in failures:
        print(f"self-test FAIL: {line}", file=sys.stderr)
    if verbose and not failures:
        rules = sorted({c.code for c in all_checkers()} | {PARSE_ERROR_CODE})
        print(
            f"self-test OK: {checked} fixture checks across "
            f"{len(rules)} rules ({', '.join(rules)})"
        )
    return 1 if failures else 0


def _suppress_lines(fixture, comment: str) -> str:
    """The fixture source with ``comment`` appended to every line the
    fixture's rule fires on."""
    hits = {
        f.line for f in analyze_source(fixture.path, fixture.source)
        if f.rule == fixture.rule
    }
    lines = fixture.source.splitlines()
    return "\n".join(
        f"{line}  {comment}" if i + 1 in hits else line
        for i, line in enumerate(lines)
    ) + "\n"


# -- CLI ----------------------------------------------------------------

def add_arguments(parser: argparse.ArgumentParser) -> None:
    """The analyzer's flag surface; shared verbatim by the standalone
    parser and the ``repro analyze`` CLI subcommand."""
    parser.add_argument(
        "targets", nargs="*",
        help=f"files/directories to analyze (default: "
             f"{' '.join(DEFAULT_TARGETS)})",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE,
        help="baseline file of grandfathered findings "
             f"(default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline to grandfather current findings "
             "(then exit 0)",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="verify the rules against the built-in clean/violating "
             "fixtures and exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description=(
            "Repo-specific static analyzer: enforces the runtime's "
            "concurrency (RPR1xx), dispatch (RPR2xx), API-contract "
            "(RPR3xx) and hygiene (RPR4xx) invariants. Stdlib-only."
        ),
    )
    add_arguments(parser)
    return parser


def list_rules() -> str:
    rows = [(c.code, c.name, c.paths_note, c.summary)
            for c in all_checkers()]
    rows.append((
        PARSE_ERROR_CODE, "parse-error", "all files",
        "file must parse with ast.parse before any rule can run",
    ))
    rows.sort()
    width = max(len(r[1]) for r in rows)
    return "\n".join(
        f"{code}  {name:<{width}}  [{paths}] {summary}"
        for code, name, paths, summary in rows
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    return run(build_parser().parse_args(argv))


def run(args: argparse.Namespace) -> int:
    """Execute one analyzer invocation from parsed arguments."""
    if args.self_test:
        return run_self_test()
    if args.list_rules:
        print(list_rules())
        return 0

    targets = args.targets or list(DEFAULT_TARGETS)
    root = Path.cwd()
    findings = analyze_paths(targets, root)

    baseline_path = Path(args.baseline)
    if args.write_baseline:
        write_baseline(baseline_path, findings)
        print(
            f"wrote {len(findings)} grandfathered finding(s) to "
            f"{baseline_path}"
        )
        return 0

    matched = stale = 0
    if not args.no_baseline and baseline_path.is_file():
        entries = load_baseline(baseline_path)
        findings, matched, stale = apply_baseline(findings, entries)

    if args.json:
        print(render_json(findings, matched, stale))
    else:
        if findings:
            print(render_text(findings))
        summary = (
            f"{len(findings)} finding(s)"
            + (f", {matched} baselined" if matched else "")
            + (f", {stale} stale baseline entr"
               f"{'y' if stale == 1 else 'ies'}" if stale else "")
        )
        print(f"repro analyze: {summary} in {' '.join(targets)}")
        if stale:
            print(
                "  stale entries no longer match any finding; prune "
                "them with --write-baseline", file=sys.stderr,
            )
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
