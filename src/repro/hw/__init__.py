"""repro.hw — cycle-level analytical model of the Ptolemy hardware:
augmented accelerator, path constructor, memory system, controller,
the area model, and the transaction-level DRAM / systolic-dataflow
refinements used by the hardware ablation benchmarks."""

from repro.hw.config import DEFAULT_HW, EnergyTable, HardwareConfig
from repro.hw.workload import LayerWorkload, ModelWorkload, model_workload
from repro.hw.accelerator import (
    InferenceCost,
    LayerCost,
    inference_cost,
    recompute_cycles,
)
from repro.hw.memory import DramFootprint, detection_dram_footprint
from repro.hw.dram import (
    DoubleBufferPlan,
    DramConfig,
    DramModel,
    DramStats,
    DramTimings,
    double_buffer_cycles,
    stream_cycles,
)
from repro.hw.systolic import (
    GemmShape,
    SystolicCost,
    gemm_shape,
    systolic_gemm_cycles,
    systolic_inference_cycles,
    systolic_layer_cost,
)
from repro.hw.controller import ControllerCost, controller_cost
from repro.hw.simulator import DetectionCost, UnitCost, simulate_detection
from repro.hw.area import AreaReport, area_report

__all__ = [
    "DEFAULT_HW",
    "EnergyTable",
    "HardwareConfig",
    "LayerWorkload",
    "ModelWorkload",
    "model_workload",
    "InferenceCost",
    "LayerCost",
    "inference_cost",
    "recompute_cycles",
    "DramFootprint",
    "detection_dram_footprint",
    "DoubleBufferPlan",
    "DramConfig",
    "DramModel",
    "DramStats",
    "DramTimings",
    "double_buffer_cycles",
    "stream_cycles",
    "GemmShape",
    "SystolicCost",
    "gemm_shape",
    "systolic_gemm_cycles",
    "systolic_inference_cycles",
    "systolic_layer_cost",
    "ControllerCost",
    "controller_cost",
    "DetectionCost",
    "UnitCost",
    "simulate_detection",
    "AreaReport",
    "area_report",
]
